package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Prometheus text-format exporter (exposition format version 0.0.4) for
// the pool's engines. No client library is used: the engine's lock-free
// counters are already the collected state, so rendering is a pure read
// of every instance's Snapshot. The name/label reference lives in
// docs/OPERATIONS.md.

// metricDef describes one per-instance series derived from an
// engine.Snapshot.
type metricDef struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value func(engine.Snapshot) float64
}

// perInstanceMetrics is the exported series, one value per instance,
// labeled {instance="i-n"} plus {label="..."} when a registration label
// was supplied.
var perInstanceMetrics = []metricDef{
	{"osp_engine_submitted_elements_total", "counter",
		"Elements flushed to shard queues (published once per batch).",
		func(s engine.Snapshot) float64 { return float64(s.Submitted) }},
	{"osp_engine_processed_elements_total", "counter",
		"Elements decided by shard workers.",
		func(s engine.Snapshot) float64 { return float64(s.Processed) }},
	{"osp_engine_batches_total", "counter",
		"Batches handed to shard workers.",
		func(s engine.Snapshot) float64 { return float64(s.Batches) }},
	{"osp_engine_assigned_total", "counter",
		"Element-to-set assignments made (admitted memberships).",
		func(s engine.Snapshot) float64 { return float64(s.Assigned) }},
	{"osp_engine_dropped_total", "counter",
		"Memberships denied (packets dropped in the router reading).",
		func(s engine.Snapshot) float64 { return float64(s.Dropped) }},
	{"osp_engine_completed_sets", "gauge",
		"Sets completed at drain (0 while the stream is open).",
		func(s engine.Snapshot) float64 { return float64(s.CompletedSets) }},
	{"osp_engine_completed_weight", "gauge",
		"Total weight of completed sets at drain (the OSP benefit).",
		func(s engine.Snapshot) float64 { return s.CompletedWeight }},
	{"osp_engine_elapsed_seconds", "gauge",
		"Seconds since the engine opened, frozen at drain.",
		func(s engine.Snapshot) float64 { return s.Elapsed.Seconds() }},
	{"osp_engine_elements_per_second", "gauge",
		"Processed elements per second of elapsed time.",
		func(s engine.Snapshot) float64 { return s.ElementsPerSec }},
}

// writeMetrics renders the whole exposition: per-state instance gauges,
// every per-instance engine series, then the server-level telemetry —
// per-stage latency histograms, HTTP outcome counters, decision-log
// counters, build info and Go runtime gauges.
func writeMetrics(w io.Writer, s *Server) {
	if s.cfg.NodeLabel != "" {
		fmt.Fprintf(w, "# HELP osp_node_info Cluster node identity (value is always 1; the label carries the information).\n")
		fmt.Fprintf(w, "# TYPE osp_node_info gauge\n")
		fmt.Fprintf(w, "osp_node_info{node=%q} 1\n", escapeLabel(s.cfg.NodeLabel))
	}
	instances := s.pool.Instances()

	states := map[engine.State]int{}
	for _, in := range instances {
		states[in.State()]++
	}
	fmt.Fprintf(w, "# HELP osp_instances Registered instances by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE osp_instances gauge\n")
	for _, st := range []engine.State{engine.StateIdle, engine.StateStreaming, engine.StateDrained} {
		fmt.Fprintf(w, "osp_instances{state=%q} %d\n", st.String(), states[st])
	}

	// One snapshot per instance, reused across all series so every series
	// of an instance reflects the same instant.
	snaps := make([]engine.Snapshot, len(instances))
	labels := make([]string, len(instances))
	for i, in := range instances {
		snaps[i] = in.Snapshot()
		labels[i] = instanceLabels(in)
	}
	fmt.Fprintf(w, "# HELP osp_instance_state Lifecycle state of each instance (1 on the current state's series).\n")
	fmt.Fprintf(w, "# TYPE osp_instance_state gauge\n")
	for i, in := range instances {
		fmt.Fprintf(w, "osp_instance_state{%s,state=%q} 1\n", labels[i], in.State().String())
	}

	// Policy is an info gauge for the same reason state is: a label on the
	// counters would split every series if policies ever became mutable.
	fmt.Fprintf(w, "# HELP osp_instance_policy Admission policy of each instance (1 on the policy's series).\n")
	fmt.Fprintf(w, "# TYPE osp_instance_policy gauge\n")
	for i, in := range instances {
		fmt.Fprintf(w, "osp_instance_policy{%s,policy=%q} 1\n", labels[i], in.Policy())
	}

	for _, def := range perInstanceMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n", def.name, def.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", def.name, def.kind)
		for i := range instances {
			fmt.Fprintf(w, "%s{%s} %v\n", def.name, labels[i], def.value(snaps[i]))
		}
	}

	fmt.Fprintf(w, "# HELP osp_engine_shards Shard workers of the instance's engine.\n")
	fmt.Fprintf(w, "# TYPE osp_engine_shards gauge\n")
	for i, in := range instances {
		fmt.Fprintf(w, "osp_engine_shards{%s} %d\n", labels[i], in.Shards())
	}

	writeStageHistograms(w, &s.obs)
	writeHTTPCounters(w, &s.obs.http)
	writeStreamCounters(w, &s.obs.stream)
	writeDecisionLogMetrics(w, s.obs.decisions)
	writeRuntimeMetrics(w)
}

// writeStageHistograms renders the four pipeline-stage latency
// histograms as one native Prometheus histogram family keyed by the
// stage label. Buckets are the power-of-two bounds of obs.Histogram
// rendered cumulatively, with the mandatory +Inf bucket equal to
// _count.
func writeStageHistograms(w io.Writer, o *serverObs) {
	const name = "osp_stage_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Latency by pipeline stage: ingest_decode (wire payload to validated elements, HTTP), stream_decode (the same on the stream transport), queue_wait (batch flush to shard dequeue), decide (shard whole-batch policy decide), request (full HTTP round trip).\n", name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	stages := []struct {
		stage string
		h     *obs.Histogram
	}{
		{"ingest_decode", &o.ingestDecode},
		{"stream_decode", &o.streamDecode},
		{"queue_wait", &o.queueWait},
		{"decide", &o.decide},
		{"request", &o.request},
	}
	for _, st := range stages {
		snap := st.h.Snapshot()
		var cum uint64
		for i := 0; i < obs.HistogramBuckets; i++ {
			cum += snap.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n",
				name, st.stage, formatFloat(obs.BucketBound(i)), cum)
		}
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, st.stage, snap.Count)
		fmt.Fprintf(w, "%s_sum{stage=%q} %s\n", name, st.stage, formatFloat(snap.SumSecs))
		fmt.Fprintf(w, "%s_count{stage=%q} %d\n", name, st.stage, snap.Count)
	}
}

// writeHTTPCounters renders osp_http_requests_total{handler,code}: one
// counter per (matched mux pattern, status code) pair that has
// occurred, so error rates are visible next to engine progress.
func writeHTTPCounters(w io.Writer, h *httpStats) {
	fmt.Fprintf(w, "# HELP osp_http_requests_total HTTP requests by matched route pattern and status code.\n")
	fmt.Fprintf(w, "# TYPE osp_http_requests_total counter\n")
	keys, vals := h.snapshot()
	for i, k := range keys {
		fmt.Fprintf(w, "osp_http_requests_total{handler=%q,code=\"%d\"} %d\n",
			escapeLabel(k.handler), k.code, vals[i])
	}
}

// writeStreamCounters renders the stream transport's lifetime
// counters: connection churn, batches carried, and terminal errors.
func writeStreamCounters(w io.Writer, st *streamStats) {
	fmt.Fprintf(w, "# HELP osp_stream_connections_total Stream transport connections accepted.\n")
	fmt.Fprintf(w, "# TYPE osp_stream_connections_total counter\n")
	fmt.Fprintf(w, "osp_stream_connections_total %d\n", st.connsTotal.Load())
	fmt.Fprintf(w, "# HELP osp_stream_connections_active Stream transport connections currently open.\n")
	fmt.Fprintf(w, "# TYPE osp_stream_connections_active gauge\n")
	fmt.Fprintf(w, "osp_stream_connections_active %d\n", st.connsActive.Load())
	fmt.Fprintf(w, "# HELP osp_stream_batches_total Batch frames ingested over the stream transport.\n")
	fmt.Fprintf(w, "# TYPE osp_stream_batches_total counter\n")
	fmt.Fprintf(w, "osp_stream_batches_total %d\n", st.batches.Load())
	fmt.Fprintf(w, "# HELP osp_stream_errors_total Streams ended by an error frame (either side).\n")
	fmt.Fprintf(w, "# TYPE osp_stream_errors_total counter\n")
	fmt.Fprintf(w, "osp_stream_errors_total %d\n", st.errors.Load())
}

// writeDecisionLogMetrics renders the decision log's lifetime counters
// and resolved sampling period. Nothing is rendered when the log is
// disabled — absent series, not zeros, so dashboards can distinguish
// "off" from "idle".
func writeDecisionLogMetrics(w io.Writer, d *obs.DecisionLog) {
	if d == nil {
		return
	}
	flushed, dropped := d.Stats()
	fmt.Fprintf(w, "# HELP osp_decision_log_flushed_total Sampled decisions flushed to the tail and sink.\n")
	fmt.Fprintf(w, "# TYPE osp_decision_log_flushed_total counter\n")
	fmt.Fprintf(w, "osp_decision_log_flushed_total %d\n", flushed)
	fmt.Fprintf(w, "# HELP osp_decision_log_dropped_total Sampled decisions dropped on full rings (drainer backlog).\n")
	fmt.Fprintf(w, "# TYPE osp_decision_log_dropped_total counter\n")
	fmt.Fprintf(w, "osp_decision_log_dropped_total %d\n", dropped)
	fmt.Fprintf(w, "# HELP osp_decision_log_sample_every Per-shard sampling period: every Nth decision is recorded.\n")
	fmt.Fprintf(w, "# TYPE osp_decision_log_sample_every gauge\n")
	fmt.Fprintf(w, "osp_decision_log_sample_every %d\n", d.SampleEvery())
}

// writeRuntimeMetrics renders build info and the Go runtime gauges.
func writeRuntimeMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP osp_build_info Build metadata (value is always 1; the labels carry the information).\n")
	fmt.Fprintf(w, "# TYPE osp_build_info gauge\n")
	fmt.Fprintf(w, "osp_build_info{go_version=%q,version=%q,revision=%q} 1\n",
		escapeLabel(buildMeta.goVersion), escapeLabel(buildMeta.version), escapeLabel(buildMeta.revision))

	rt := readRuntimeStats()
	fmt.Fprintf(w, "# HELP osp_go_goroutines Live goroutines.\n")
	fmt.Fprintf(w, "# TYPE osp_go_goroutines gauge\n")
	fmt.Fprintf(w, "osp_go_goroutines %d\n", rt.goroutines)
	fmt.Fprintf(w, "# HELP osp_go_heap_alloc_bytes Bytes of allocated heap objects.\n")
	fmt.Fprintf(w, "# TYPE osp_go_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "osp_go_heap_alloc_bytes %d\n", rt.heapBytes)
	fmt.Fprintf(w, "# HELP osp_go_heap_objects Live heap objects.\n")
	fmt.Fprintf(w, "# TYPE osp_go_heap_objects gauge\n")
	fmt.Fprintf(w, "osp_go_heap_objects %d\n", rt.heapObjects)
	fmt.Fprintf(w, "# HELP osp_go_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(w, "# TYPE osp_go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "osp_go_gc_pause_seconds_total %s\n", formatFloat(rt.gcPauseSecs))
	fmt.Fprintf(w, "# HELP osp_go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE osp_go_gc_cycles_total counter\n")
	fmt.Fprintf(w, "osp_go_gc_cycles_total %d\n", rt.gcCycles)
	fmt.Fprintf(w, "# HELP osp_go_next_gc_bytes Heap size at which the next GC cycle triggers.\n")
	fmt.Fprintf(w, "# TYPE osp_go_next_gc_bytes gauge\n")
	fmt.Fprintf(w, "osp_go_next_gc_bytes %d\n", rt.nextGCBytes)
}

// formatFloat renders a float the shortest way that parses back exactly
// — the representation used for histogram bounds and sums, where a
// lossy rendering would break bucket identity across scrapes.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// instanceLabels renders an instance's identifying label pairs. The
// lifecycle state is deliberately NOT part of these: putting a mutable
// state on a counter's labels would split the series every transition.
// State is exported separately as the osp_instance_state info gauge.
func instanceLabels(in *Instance) string {
	var b strings.Builder
	b.WriteString(`instance="`)
	b.WriteString(escapeLabel(in.ID()))
	b.WriteString(`"`)
	if l := in.Label(); l != "" {
		b.WriteString(`,label="`)
		b.WriteString(escapeLabel(l))
		b.WriteString(`"`)
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
