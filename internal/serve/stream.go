package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/stream"
	"repro/internal/wire"
)

// The raw-TCP stream arm: one long-lived connection carrying pipelined
// wire batch frames (internal/stream envelopes), answered with verdict
// frames in batch order. It exists to amortize what the HTTP arm pays
// per request — connection bookkeeping, header parse, scratch checkout,
// one blocking round trip per batch — over a whole element stream, and
// to retire the HTTP arm's double decide: stream verdicts are built by
// the engine shard during its one decide (engine.Batch.Done), not by a
// second handler-side replica decide. Steady state allocates nothing
// per element, and the default decode is zero-copy: a batch frame's
// payload is read off the socket straight into an aligned per-slot
// buffer and the engine's caps/members views alias those bytes in
// place (wire.AliasBatch) — no per-element copy between wire and
// shard. Frames that cannot be aliased (foreign byte order, or
// Config.StreamCopyDecode) fall back to the copying decoder, pinned
// byte-for-byte equivalent.
//
// Per-connection machinery, after the Hello/Ack handshake:
//
//	slots      [window]ingestSlot. Slot k%window owns everything batch
//	           seq k needs — the aligned payload buffer the engine
//	           aliases, the offsets buffer, the verdict mask buffer,
//	           and a dedicated aliased engine.Batch struct. The slot
//	           index is deterministic, so no slot ever serves two
//	           in-flight batches.
//	freeTok    chan struct{}, cap = window, pre-filled. Tokens ARE the
//	           window: the reader takes one per batch (blocking = TCP
//	           backpressure on the peer), the writer returns it after
//	           the verdict frame is on the wire. Both sides advance in
//	           seq order, so holding token k proves seq k−window's
//	           verdict was written — slot k%window is free, and the
//	           channel handoff is the happens-before edge that lets
//	           the reader overwrite memory a shard aliased.
//	resp       chan respFrame, cap = window+1: at most window verdict
//	           callbacks (each holds a mask buffer) plus one terminal
//	           from the reader — so a shard's Done callback NEVER
//	           blocks, protecting other connections sharing the shard.
//	writer     goroutine reordering completions by sequence number: a
//	           ring of window+1 slots holds early verdicts until their
//	           turn; a terminal frame (Error, Fin, or the silent
//	           dead-peer terminal) carries seq = first-unanswered, so
//	           it is held until every verdict below it is written.
//
// Each connection submits through its own Instance.IngestLane — a
// private shard round-robin — so concurrent connections feeding one
// instance contend on nothing but the shard queues themselves.
//
// Errors are connection-terminal here, unlike the lenient HTTP arm: a
// malformed or out-of-sequence frame ends the stream with an Error
// frame — routed through the same seq-ordered writer, so every batch
// read before the error still gets its verdicts first.
//
// Graceful drain (Server.Shutdown): stream listeners close, live
// connections get StreamDrainGrace to finish — frames already read are
// answered with real verdicts because the engine pool drains only
// AFTER the connections quiesce — then readers time out and end their
// streams with a "shutting down" Error frame behind any pending
// verdicts.

// streamState tracks the stream listeners and live connections for
// graceful drain.
type streamState struct {
	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*streamConn]struct{}
	draining  bool
	deadline  time.Time
	wg        sync.WaitGroup // one per live connection handler
}

// streamConn is one accepted stream connection. idx is its global
// accept ordinal, used to seed the connection's ingest lane so
// simultaneous connections start their shard round-robins apart.
type streamConn struct {
	fc       *stream.Conn
	idx      int
	draining atomic.Bool
}

// respFrame is one server→client frame routed through the seq-ordered
// writer. typ 0 is the silent terminal — flush pending verdicts, write
// nothing, exit — used when the peer is gone.
type respFrame struct {
	typ     byte
	seq     uint32
	payload []byte
}

// ingestSlot is one window slot of a connection's zero-copy ingest
// ring: the storage batch seq k (slot k%window) flows through without
// copying. raw holds the frame payload at an alignment wire.AliasBatch
// can alias (BatchAliasShift picks the landing offset); batch is the
// slot's dedicated Aliased engine.Batch — the engine detaches it after
// the decide instead of free-listing it, so the struct and its backing
// buffers stay with the slot for the next turn. masks capacity round-
// trips through the verdict callback and the writer stores it back
// here, possibly grown.
type ingestSlot struct {
	raw   []byte
	offs  []int32
	masks []byte
	batch *engine.Batch
}

// streamStats are the stream transport's lifetime counters, exported
// as osp_stream_* in /metrics.
type streamStats struct {
	connsTotal  atomic.Uint64
	connsActive atomic.Int64
	batches     atomic.Uint64
	errors      atomic.Uint64
}

// ServeStream accepts stream connections on ln until the listener
// closes, serving each on its own goroutine pair (reader + writer).
// Run it like http.Server.Serve: `go srv.ServeStream(ln)`. It returns
// nil once Shutdown begins, the accept error otherwise; the listener
// is owned by the server from this call on and closed at Shutdown.
func (s *Server) ServeStream(ln net.Listener) error {
	st := &s.stream
	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		ln.Close()
		return ErrPoolClosed
	}
	if st.listeners == nil {
		st.listeners = make(map[net.Listener]struct{})
	}
	st.listeners[ln] = struct{}{}
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		delete(st.listeners, ln)
		st.mu.Unlock()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			st.mu.Lock()
			draining := st.draining
			st.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		st.wg.Add(1)
		go s.handleStreamConn(nc)
	}
}

// handleStreamConn owns one accepted connection's lifecycle: counter
// and drain-registry bookkeeping around the protocol itself.
func (s *Server) handleStreamConn(nc net.Conn) {
	st := &s.stream
	defer st.wg.Done()
	defer nc.Close()
	ordinal := s.obs.stream.connsTotal.Add(1)
	s.obs.stream.connsActive.Add(1)
	defer s.obs.stream.connsActive.Add(-1)

	sc := &streamConn{fc: stream.NewConn(nc, int(s.cfg.MaxBodyBytes)), idx: int(ordinal)}
	st.mu.Lock()
	if st.conns == nil {
		st.conns = make(map[*streamConn]struct{})
	}
	st.conns[sc] = struct{}{}
	if st.draining {
		// Accepted in the closing window: serve it, but under the same
		// drain deadline every established connection got.
		sc.draining.Store(true)
		sc.fc.SetReadDeadline(st.deadline) //nolint:errcheck
	}
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		delete(st.conns, sc)
		st.mu.Unlock()
	}()

	s.serveStreamConn(sc)
}

// serveStreamConn runs the handshake, then the pipelined data plane.
func (s *Server) serveStreamConn(sc *streamConn) {
	fc := sc.fc
	typ, _, payload, err := fc.ReadFrame()
	if err != nil {
		return // nothing promised yet
	}
	fail := func(format string, args ...any) {
		s.obs.stream.errors.Add(1)
		fc.WriteFrame(stream.FrameError, 0, fmt.Appendf(nil, format, args...)) //nolint:errcheck
		fc.Flush()                                                             //nolint:errcheck
	}
	if typ != stream.FrameHello {
		fail("stream: expected hello, got frame %c", typ)
		return
	}
	id, err := stream.ParseHello(payload)
	if err != nil {
		fail("%v", err)
		return
	}
	if s.pool.Closed() {
		fail("%v", ErrPoolClosed)
		return
	}
	in, ok := s.pool.Get(id)
	if !ok {
		fail("unknown instance %q", id)
		return
	}
	window := s.cfg.StreamWindow
	if err := fc.WriteFrame(stream.FrameAck, 0,
		stream.AppendAck(make([]byte, 0, 64), uint32(window), in.Policy())); err != nil {
		return
	}
	if err := fc.Flush(); err != nil {
		return
	}

	resp := make(chan respFrame, window+1)
	slots := make([]ingestSlot, window)
	for i := range slots {
		slots[i].batch = new(engine.Batch)
	}
	freeTok := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		freeTok <- struct{}{}
	}
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// A dying writer unblocks a reader parked in ReadFrame; the
		// reader then sees writerDone and exits instead of terminating.
		defer fc.SetReadDeadline(time.Unix(1, 0)) //nolint:errcheck
		s.streamWriteLoop(fc, resp, slots, freeTok)
	}()
	s.streamReadLoop(sc, in, resp, slots, freeTok, writerDone)
	<-writerDone
}

// streamReadLoop reads batch frames, lands each payload in its window
// slot at an aliasable alignment, hands the engine caps/members views
// over those bytes (zero-copy; the copying decoder when aliasing is
// off or impossible) and submits on the connection's private lane with
// the verdict callback set; the engine shard completes the verdict
// frame during its decide. The loop ends by handing the writer exactly
// one terminal frame whose seq equals the number of batches submitted
// — the writer's signal that every verdict below it must go out first.
func (s *Server) streamReadLoop(sc *streamConn, in *Instance, resp chan respFrame, slots []ingestSlot, freeTok chan struct{}, writerDone chan struct{}) {
	fc := sc.fc
	eng := in.eng
	lane := in.IngestLane(sc.idx)
	numSets := in.info.NumSets()
	copyDecode := s.cfg.StreamCopyDecode
	timings := s.cfg.StreamTimings
	next := uint32(0) // seq of the next expected batch = batches submitted
	terminate := func(typ byte, format string, args ...any) {
		var msg []byte
		if typ == stream.FrameError {
			s.obs.stream.errors.Add(1)
			msg = fmt.Appendf(nil, format, args...)
		}
		select {
		case resp <- respFrame{typ, next, msg}:
		case <-writerDone:
		}
	}
	// The one verdict callback for the connection, invoked by engine
	// shards after each batch's decide. Never blocks: resp has room for
	// every window slot plus the reader's terminal.
	done := func(seq uint32, masks []byte) {
		resp <- respFrame{stream.FrameVerdicts, seq, masks}
	}
	for {
		typ, seq, n, err := fc.ReadHeader()
		if err != nil {
			if sc.draining.Load() && errors.Is(err, os.ErrDeadlineExceeded) {
				terminate(stream.FrameError, "stream: server shutting down (%d batches answered)", next)
			} else {
				terminate(0, "") // peer gone or writer died: flush and close
			}
			return
		}
		switch typ {
		case stream.FrameBatch:
			if seq != next {
				// The payload is left unread; terminal either way.
				terminate(stream.FrameError, "stream: batch seq %d, want %d", seq, next)
				return
			}
			// Taking the token takes the window slot; blocking here (peer
			// overran the window) is backpressure via TCP.
			select {
			case <-freeTok:
			case <-writerDone:
				return
			}
			var decodeStart time.Time
			if timings {
				decodeStart = time.Now()
			}
			slot := &slots[int(seq)%len(slots)]
			// Land the payload so its caps/members sections are 4-aligned:
			// +3 spare bytes cover any landing shift.
			if cap(slot.raw) < n+3 {
				slot.raw = make([]byte, n+3)
			}
			raw := slot.raw[:cap(slot.raw)]
			pad := wire.BatchAliasShift(raw)
			payload := raw[pad : pad+n]
			if err := fc.ReadPayloadInto(payload); err != nil {
				terminate(0, "")
				return
			}
			// Enforce the batch cap from the frame header BEFORE decoding,
			// for the same reason the HTTP arm does: the copying decode
			// fills engine free-list buffers that live as long as the
			// instance.
			if c, ok := wire.PeekBatchCount(payload); ok && c > s.cfg.MaxBatch {
				terminate(stream.FrameError, "ingest: batch of %d exceeds limit %d", c, s.cfg.MaxBatch)
				return
			}
			var b *engine.Batch
			if !copyDecode {
				members, offs, caps, ok, aerr := wire.AliasBatch(payload, slot.offs[:0])
				if aerr != nil {
					terminate(stream.FrameError, "ingest: %v", aerr)
					return
				}
				if ok {
					slot.offs = offs
					b = slot.batch
					b.Members, b.Offs, b.Caps, b.Aliased = members, offs, caps, true
				}
			}
			if b == nil {
				// Copying fallback: alias off, or the frame cannot be
				// aliased on this platform.
				b = eng.BorrowBatch()
				b.Members, b.Offs, b.Caps, err = wire.DecodeBatch(payload, b.Members[:0], b.Offs[:0], b.Caps[:0])
				if err != nil {
					eng.ReturnBatch(b)
					terminate(stream.FrameError, "ingest: %v", err)
					return
				}
			}
			// Atomicity, as both HTTP arms: the whole batch is validated
			// against the instance's universe before any element is
			// submitted. For aliased batches this is also where values
			// past MaxInt32 — negative through the int32 view — are
			// rejected, which is what lets AliasBatch skip that scan.
			if err := b.Validate(numSets); err != nil {
				eng.ReturnBatch(b)
				terminate(stream.FrameError, "ingest: %v", err)
				return
			}
			if timings {
				s.obs.streamDecode.Observe(time.Since(decodeStart))
			}
			b.Seq = seq
			b.Masks = wire.AppendVerdictsHeader(slot.masks[:0], b.Len())
			b.Done = done
			if err := lane.IngestBatch(b); err != nil {
				// The engine detached the batch (Reset dropped the
				// callback), so no verdict for this seq is coming: next
				// still counts only submitted batches.
				if errors.Is(err, engine.ErrDrained) {
					terminate(stream.FrameError, "ingest: instance %s is already drained", in.ID())
				} else {
					terminate(stream.FrameError, "ingest: %v", err)
				}
				return
			}
			next++
			s.obs.stream.batches.Add(1)
		case stream.FrameFin:
			if _, err := fc.ReadPayload(n); err != nil {
				terminate(0, "")
				return
			}
			if seq != next {
				terminate(stream.FrameError, "stream: fin declares %d batches, %d submitted", seq, next)
				return
			}
			terminate(stream.FrameFin, "")
			return
		case stream.FrameError:
			if _, err := fc.ReadPayload(n); err != nil {
				terminate(0, "")
				return
			}
			s.obs.stream.errors.Add(1)
			terminate(0, "") // client aborted: flush what it is owed, close
			return
		default:
			terminate(stream.FrameError, "stream: unexpected frame %c", typ)
			return
		}
	}
}

// streamWriteLoop is the connection's single writer: it restores batch
// order over shard-completion order with a ring of pending verdict
// frames, stores each (possibly grown) mask buffer back into its slot
// and releases the window token once the frame is on the wire, flushes
// whenever the completion channel goes momentarily quiet, and exits
// after the terminal frame. Writing strictly in seq order is what
// makes the token release a proof that the seq's slot is reusable.
func (s *Server) streamWriteLoop(fc *stream.Conn, resp chan respFrame, slots []ingestSlot, freeTok chan struct{}) {
	window := len(slots)
	ring := make([]respFrame, window+1)
	present := make([]bool, window+1)
	next := uint32(0) // seq of the next verdict frame to write
	var terminal *respFrame
	flushed := true
	for {
		if terminal != nil && next == terminal.seq {
			if terminal.typ != 0 {
				if err := fc.WriteFrame(terminal.typ, terminal.seq, terminal.payload); err != nil {
					return
				}
			}
			fc.Flush() //nolint:errcheck // the stream is over either way
			return
		}
		var f respFrame
		select {
		case f = <-resp:
		default:
			if !flushed {
				if err := fc.Flush(); err != nil {
					return
				}
				flushed = true
			}
			f = <-resp
		}
		if f.typ != stream.FrameVerdicts {
			t := f
			terminal = &t
			continue
		}
		slot := int(f.seq) % len(ring)
		ring[slot], present[slot] = f, true
		for {
			slot := int(next) % len(ring)
			if !present[slot] {
				break
			}
			g := ring[slot]
			present[slot] = false
			if err := fc.WriteFrame(g.typ, g.seq, g.payload); err != nil {
				return
			}
			flushed = false
			slots[int(g.seq)%window].masks = g.payload
			freeTok <- struct{}{} // never blocks: at most window tokens exist
			next++
		}
	}
}

// drainStreams begins the stream side of graceful shutdown: close the
// listeners, put every live connection on the drain deadline, and wait
// for them to finish — forcing the sockets closed if ctx expires
// first. It must complete BEFORE the engine pool drains so that frames
// read during the grace window still get real verdicts.
func (s *Server) drainStreams(ctx context.Context) {
	st := &s.stream
	st.mu.Lock()
	st.draining = true
	st.deadline = time.Now().Add(s.cfg.StreamDrainGrace)
	for ln := range st.listeners {
		ln.Close()
	}
	for sc := range st.conns {
		sc.draining.Store(true)
		sc.fc.SetReadDeadline(st.deadline) //nolint:errcheck
	}
	st.mu.Unlock()

	done := make(chan struct{})
	go func() { st.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		st.mu.Lock()
		for sc := range st.conns {
			sc.fc.Close()
		}
		st.mu.Unlock()
		<-done // handlers exit promptly once their sockets are closed
	}
}
