package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// do runs one request through the server and decodes the JSON response
// into out (skipped when out is nil).
func do(t *testing.T, s *Server, method, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad response JSON %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

// register opens an instance over inst's up-front info and returns its id.
func register(t *testing.T, s *Server, inst *setsystem.Instance, seed uint64) string {
	t.Helper()
	var resp RegisterResponse
	rec := do(t, s, "POST", "/v1/instances", RegisterRequest{
		Weights: inst.Weights, Sizes: inst.Sizes, Seed: seed, Shards: 2, BatchSize: 8,
	}, &resp)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.State != "idle" || resp.Shards != 2 || resp.ID == "" {
		t.Fatalf("register response = %+v", resp)
	}
	return resp.ID
}

// wireElems converts instance elements to their wire shape.
func wireElems(els []setsystem.Element) []WireElement {
	out := make([]WireElement, len(els))
	for i, el := range els {
		out[i] = WireElement{Members: el.Members, Capacity: el.Capacity}
	}
	return out
}

// uniformInst builds a deterministic uniform workload.
func uniformInst(t *testing.T, m, n, load int, seed int64) *setsystem.Instance {
	t.Helper()
	inst, err := workload.Uniform(workload.UniformConfig{M: m, N: n, Load: load, Capacity: 2},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestRegisterIngestDrainHappyPath walks the full protocol and pins the
// headline guarantee: the drained result over HTTP is bit-for-bit the
// serial HashRandPr oracle's, and every per-element verdict matches the
// oracle's choice.
func TestRegisterIngestDrainHappyPath(t *testing.T) {
	const seed = 99
	inst := uniformInst(t, 40, 800, 4, 7)
	s := New(Config{})
	id := register(t, s, inst, seed)

	// Oracle: the serial distributed randPr under the same seed.
	oracle, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prio := core.HashPriorities(core.InfoOf(inst), hashpr.Mixer{Seed: seed}, nil)

	// Ingest in a few batches, checking verdicts as they come back.
	const batch = 100
	for off := 0; off < len(inst.Elements); off += batch {
		end := min(off+batch, len(inst.Elements))
		var resp IngestResponse
		rec := do(t, s, "POST", "/v1/instances/"+id+"/elements",
			IngestRequest{Elements: wireElems(inst.Elements[off:end])}, &resp)
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
		}
		if resp.Ingested != end-off || len(resp.Verdicts) != end-off {
			t.Fatalf("ingest counts = %d verdicts / %d ingested, want %d", len(resp.Verdicts), resp.Ingested, end-off)
		}
		for i, v := range resp.Verdicts {
			el := inst.Elements[off+i]
			want := core.SelectTopPriority(el.Members, el.Capacity, prio, nil)
			if fmt.Sprint(v.Admitted) != fmt.Sprint(want) {
				t.Fatalf("element %d verdict = %v, oracle chose %v", off+i, v.Admitted, want)
			}
			if len(v.Admitted)+len(v.Dropped) != len(el.Members) {
				t.Fatalf("element %d verdict splits %d+%d of %d members",
					off+i, len(v.Admitted), len(v.Dropped), len(el.Members))
			}
		}
	}

	var dr DrainResponse
	rec := do(t, s, "POST", "/v1/instances/"+id+"/drain", nil, &dr)
	if rec.Code != http.StatusOK {
		t.Fatalf("drain: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := dr.Result.Core(); !got.Equal(oracle) {
		t.Fatalf("drained result differs from serial oracle: benefit %v vs %v", got.Benefit, oracle.Benefit)
	}
	if dr.Metrics.Processed != uint64(len(inst.Elements)) {
		t.Errorf("metrics.processed = %d, want %d", dr.Metrics.Processed, len(inst.Elements))
	}

	// Drain is idempotent over HTTP too.
	var dr2 DrainResponse
	do(t, s, "POST", "/v1/instances/"+id+"/drain", nil, &dr2)
	if !dr2.Result.Core().Equal(oracle) {
		t.Error("second drain returned a different result")
	}

	// Status reflects the terminal state.
	var st InstanceStatus
	do(t, s, "GET", "/v1/instances/"+id, nil, &st)
	if st.State != "drained" || st.Seed != seed || st.Sets != inst.NumSets() {
		t.Errorf("status = %+v", st)
	}
}

// TestIngestMalformedBatches pins every 400 path and that a rejected
// batch is atomic — nothing from it reaches the engine.
func TestIngestMalformedBatches(t *testing.T) {
	var b setsystem.Builder
	a := b.AddSet(1)
	c := b.AddSet(2)
	b.AddElement(a, c)
	b.AddElement(a)
	b.AddElement(c)
	inst := b.MustBuild()

	s := New(Config{MaxBatch: 4})
	id := register(t, s, inst, 1)
	path := "/v1/instances/" + id + "/elements"

	cases := []struct {
		name string
		raw  string
	}{
		{"not json", `{"elements": [`},
		{"unknown field", `{"elements": [], "bogus": 1}`},
		{"empty batch", `{"elements": []}`},
		{"no members", `{"elements": [{"members": [], "capacity": 1}]}`},
		{"zero capacity", `{"elements": [{"members": [0], "capacity": 0}]}`},
		{"capacity over int32", `{"elements": [{"members": [0], "capacity": 4294967296}]}`},
		{"out of range", `{"elements": [{"members": [7], "capacity": 1}]}`},
		{"unsorted members", `{"elements": [{"members": [1,0], "capacity": 1}]}`},
		{"bad sibling poisons batch", `{"elements": [{"members": [0], "capacity": 1}, {"members": [9], "capacity": 1}]}`},
		{"oversized batch", `{"elements": [` + strings.Repeat(`{"members":[0],"capacity":1},`, 4) + `{"members":[0],"capacity":1}]}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("POST", path, strings.NewReader(tc.raw))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, rec.Code, rec.Body.String())
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not the uniform shape", tc.name, rec.Body.String())
		}
	}

	// Atomicity: despite the poisoned batches above, no element was
	// ingested.
	in, _ := s.Pool().Get(id)
	if got := in.Snapshot().Submitted; got != 0 {
		t.Errorf("rejected batches leaked %d elements into the engine", got)
	}
}

// TestIngestAfterDrainConflicts pins the 409 path.
func TestIngestAfterDrainConflicts(t *testing.T) {
	var b setsystem.Builder
	a := b.AddSet(1)
	b.AddElement(a)
	inst := b.MustBuild()

	s := New(Config{})
	id := register(t, s, inst, 1)
	do(t, s, "POST", "/v1/instances/"+id+"/drain", nil, nil)
	rec := do(t, s, "POST", "/v1/instances/"+id+"/elements",
		IngestRequest{Elements: []WireElement{{Members: []setsystem.SetID{0}, Capacity: 1}}}, nil)
	if rec.Code != http.StatusConflict {
		t.Errorf("ingest after drain: status %d, want 409 (%s)", rec.Code, rec.Body.String())
	}
}

// TestRegisterValidation pins the register 400 paths.
func TestRegisterValidation(t *testing.T) {
	s := New(Config{})
	bad := []RegisterRequest{
		{}, // no sets
		{Weights: []float64{1}, Sizes: []int{1, 2}},     // length mismatch
		{Weights: []float64{-1}, Sizes: []int{1}},       // negative weight
		{Weights: []float64{1}, Sizes: []int{0}},        // empty set
		{Weights: []float64{1, 2}, Sizes: []int{3, -1}}, // negative size
	}
	for i, req := range bad {
		if rec := do(t, s, "POST", "/v1/instances", req, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("bad register %d: status %d, want 400", i, rec.Code)
		}
	}
	if rec := do(t, s, "GET", "/v1/instances/i-404", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown instance status: %d, want 404", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/instances/i-404/drain", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown instance drain: %d, want 404", rec.Code)
	}
}

// TestRegisterEngineSizingClamped pins the resource-bound hardening: a
// single unauthenticated registration must not be able to size the
// engine arbitrarily (each shard is a goroutine, a channel and an
// m-sized counter array; batch and queue sizes multiply the pre-filled
// free list).
func TestRegisterEngineSizingClamped(t *testing.T) {
	s := New(Config{})
	for name, req := range map[string]RegisterRequest{
		"huge shards":    {Weights: []float64{1}, Sizes: []int{1}, Shards: 2_000_000_000},
		"negative batch": {Weights: []float64{1}, Sizes: []int{1}, BatchSize: -1},
		"huge queue":     {Weights: []float64{1}, Sizes: []int{1}, QueueDepth: 1 << 30},
	} {
		if rec := do(t, s, "POST", "/v1/instances", req, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}
	// The documented maxima are still accepted.
	ok := RegisterRequest{Weights: []float64{1}, Sizes: []int{1}, Shards: 4, BatchSize: maxBatchSize, QueueDepth: 8}
	if rec := do(t, s, "POST", "/v1/instances", ok, nil); rec.Code != http.StatusCreated {
		t.Errorf("in-range sizing rejected: %d (%s)", rec.Code, rec.Body.String())
	}

	// In-range fields whose PRODUCTS would still allocate unboundedly
	// are rejected: shards × queue depth (pre-filled batch free list)
	// and shards × sets (counter cells). Lower the caps so the probe
	// stays cheap.
	defer func(cells, batches int) { maxCounterCells, maxInFlightBatch = cells, batches }(maxCounterCells, maxInFlightBatch)
	maxCounterCells, maxInFlightBatch = 1<<10, 1<<10
	products := map[string]RegisterRequest{
		"queue product": {Weights: []float64{1}, Sizes: []int{1}, Shards: 64, QueueDepth: 1 << 10},
		"cells product": {Weights: make([]float64, 1<<7), Sizes: ones(1 << 7), Shards: 64},
	}
	for name, req := range products {
		if rec := do(t, s, "POST", "/v1/instances", req, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}
}

// ones returns a size vector of n unit-sized sets.
func ones(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// TestBodySizeLimit pins the 413 path: a body past MaxBodyBytes is
// refused without being buffered.
func TestBodySizeLimit(t *testing.T) {
	s := New(Config{MaxBodyBytes: 128})
	big := `{"weights":[` + strings.Repeat("1,", 200) + `1],"sizes":[` + strings.Repeat("1,", 200) + `1]}`
	req := httptest.NewRequest("POST", "/v1/instances", strings.NewReader(big))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (%s)", rec.Code, rec.Body.String())
	}
}

// TestPoolLimit pins the 429 path.
func TestPoolLimit(t *testing.T) {
	var b setsystem.Builder
	a := b.AddSet(1)
	b.AddElement(a)
	inst := b.MustBuild()

	s := New(Config{MaxInstances: 2})
	register(t, s, inst, 1)
	register(t, s, inst, 2)
	rec := do(t, s, "POST", "/v1/instances",
		RegisterRequest{Weights: inst.Weights, Sizes: inst.Sizes}, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("over-limit register: status %d, want 429", rec.Code)
	}
}

// TestConcurrentInstances hammers several instances from concurrent
// goroutines (run under -race in CI): each streams its own workload
// through the shared server and must still match its serial oracle
// exactly.
func TestConcurrentInstances(t *testing.T) {
	s := New(Config{})
	const workers = 6
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			seed := uint64(1000 + wk)
			inst := uniformInst(t, 30, 600, 3, int64(wk))
			var reg RegisterResponse
			rec := do(t, s, "POST", "/v1/instances", RegisterRequest{
				Weights: inst.Weights, Sizes: inst.Sizes, Seed: seed,
				Shards: 2, BatchSize: 16, Label: fmt.Sprintf("wk-%d", wk),
			}, &reg)
			if rec.Code != http.StatusCreated {
				t.Errorf("worker %d register: %d", wk, rec.Code)
				return
			}
			const batch = 50
			for off := 0; off < len(inst.Elements); off += batch {
				end := min(off+batch, len(inst.Elements))
				rec := do(t, s, "POST", "/v1/instances/"+reg.ID+"/elements",
					IngestRequest{Elements: wireElems(inst.Elements[off:end])}, nil)
				if rec.Code != http.StatusOK {
					t.Errorf("worker %d ingest: %d: %s", wk, rec.Code, rec.Body.String())
					return
				}
			}
			var dr DrainResponse
			do(t, s, "POST", "/v1/instances/"+reg.ID+"/drain", nil, &dr)
			oracle, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if !dr.Result.Core().Equal(oracle) {
				t.Errorf("worker %d: result differs from oracle", wk)
			}
		}(wk)
	}
	wg.Wait()

	var list ListResponse
	do(t, s, "GET", "/v1/instances", nil, &list)
	if len(list.Instances) != workers {
		t.Errorf("list has %d instances, want %d", len(list.Instances), workers)
	}
}

// TestMetricsExposition pins the Prometheus rendering: state gauges,
// per-instance series with labels, escaping, and counter values that
// reflect the stream.
func TestMetricsExposition(t *testing.T) {
	var b setsystem.Builder
	a := b.AddSet(1)
	c := b.AddSet(2)
	b.AddElement(a, c)
	b.AddElement(a)
	b.AddElement(c)
	inst := b.MustBuild()

	s := New(Config{})
	var reg RegisterResponse
	do(t, s, "POST", "/v1/instances", RegisterRequest{
		Weights: inst.Weights, Sizes: inst.Sizes, Seed: 5, Label: `vid"eo\1`,
	}, &reg)
	do(t, s, "POST", "/v1/instances/"+reg.ID+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements)}, nil)
	do(t, s, "POST", "/v1/instances/"+reg.ID+"/drain", nil, nil)

	rec := do(t, s, "GET", "/metrics", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, frag := range []string{
		`osp_instances{state="drained"} 1`,
		`osp_instance_state{instance="` + reg.ID + `",label="vid\"eo\\1",state="drained"} 1`,
		`osp_engine_processed_elements_total{instance="` + reg.ID + `",label="vid\"eo\\1"} 3`,
		"# TYPE osp_engine_submitted_elements_total counter",
		"# TYPE osp_engine_completed_weight gauge",
		"osp_engine_shards{",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("metrics exposition missing %q:\n%s", frag, body)
		}
	}
}

// TestRemoveInstance pins DELETE: drains, frees, 404s afterwards.
func TestRemoveInstance(t *testing.T) {
	var b setsystem.Builder
	a := b.AddSet(1)
	b.AddElement(a)
	inst := b.MustBuild()

	s := New(Config{})
	id := register(t, s, inst, 1)
	if rec := do(t, s, "DELETE", "/v1/instances/"+id, nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/v1/instances/"+id, nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("status after delete: %d, want 404", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/instances/"+id, nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("double delete: %d, want 404", rec.Code)
	}
	if s.Pool().Len() != 0 {
		t.Errorf("pool still holds %d instances", s.Pool().Len())
	}
}

// TestHealthz pins the liveness probe on a live and a shutting-down
// server.
func TestHealthz(t *testing.T) {
	s := New(Config{})
	if rec := do(t, s, "GET", "/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("healthz: %d", rec.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s, "GET", "/healthz", nil, nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: %d, want 503", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/instances",
		RegisterRequest{Weights: []float64{1}, Sizes: []int{1}}, nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("register after shutdown: %d, want 503", rec.Code)
	}
}
