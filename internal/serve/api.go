package serve

import (
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/setsystem"
)

// This file defines the JSON wire shapes of the admission service's HTTP
// API. osp/client mirrors these shapes field-for-field; the contract is
// the JSON, not the Go types, and the client round-trip tests pin the two
// against each other. docs/OPERATIONS.md documents every endpoint with
// request/response examples.

// RegisterRequest is the body of POST /v1/instances: the up-front
// information of an OSP instance (per-set weights and declared sizes —
// exactly what an online algorithm may know before the stream starts),
// the shared priority seed, and optional engine sizing.
type RegisterRequest struct {
	// Weights[i] is w(S_i) >= 0. Required, same length as Sizes.
	Weights []float64 `json:"weights"`
	// Sizes[i] is |S_i|, the declared element count of set i. Required.
	Sizes []int `json:"sizes"`
	// Seed is the shared 64-bit priority seed. Every replica given the
	// same seed — including the serial oracle a client verifies against —
	// agrees on all admission decisions.
	Seed uint64 `json:"seed"`
	// Shards, BatchSize and QueueDepth size the instance's engine; zero
	// values take the engine defaults (GOMAXPROCS shards, 64-element
	// batches, 8 queued batches per shard).
	Shards     int `json:"shards,omitempty"`
	BatchSize  int `json:"batch_size,omitempty"`
	QueueDepth int `json:"queue_depth,omitempty"`
	// Policy names the admission policy the instance's engine runs; ""
	// means the default "randpr". Unknown names are rejected with 400;
	// the registered names are in the error message and documented in
	// docs/OPERATIONS.md.
	Policy string `json:"policy,omitempty"`
	// Label is an optional free-form tag echoed as the "label" label on
	// the instance's /metrics series.
	Label string `json:"label,omitempty"`
}

// RegisterResponse is the body of a successful POST /v1/instances.
type RegisterResponse struct {
	// ID is the server-assigned instance identifier used in all
	// /v1/instances/{id}/... paths.
	ID string `json:"id"`
	// Shards is the resolved shard-worker count.
	Shards int `json:"shards"`
	// Policy is the resolved admission-policy name ("randpr" when the
	// request left it empty).
	Policy string `json:"policy"`
	// State is the lifecycle state, "idle" at registration.
	State string `json:"state"`
}

// WireElement is one arriving element on the wire: the parent sets C(u)
// in strictly increasing SetID order, and the capacity b(u) >= 1.
type WireElement struct {
	Members  []setsystem.SetID `json:"members"`
	Capacity int               `json:"capacity"`
}

// element converts to the engine's element type. The slice is shared, not
// copied — the engine bulk-copies members at Submit, so the request body's
// backing storage is never retained.
func (e WireElement) element() setsystem.Element {
	return setsystem.Element{Members: e.Members, Capacity: e.Capacity}
}

// IngestRequest is the body of POST /v1/instances/{id}/elements: a batch
// of elements in arrival order. The batch is atomic — if any element is
// invalid the whole batch is rejected and nothing is ingested.
type IngestRequest struct {
	Elements []WireElement `json:"elements"`
}

// Verdict is the immediate admit/drop decision for one element: the at
// most b(u) parent sets the element was assigned to, and the memberships
// denied — in the paper's router reading, the frames whose packet was
// forwarded and the frames whose packet was dropped. Both lists are in
// ascending SetID order.
type Verdict struct {
	Admitted []setsystem.SetID `json:"admitted"`
	Dropped  []setsystem.SetID `json:"dropped"`
}

// IngestResponse is the body of a successful ingest: one verdict per
// batched element, in batch order.
type IngestResponse struct {
	Verdicts []Verdict `json:"verdicts"`
	// Ingested is the number of elements accepted (always the full batch
	// on success; the field lets clients accumulate totals cheaply).
	Ingested int `json:"ingested"`
}

// WireResult is a core.Result on the wire. Float64 benefits survive the
// JSON round trip bit-for-bit (Go emits the shortest representation that
// parses back exactly), so a client-side Result.Equal check against a
// local serial run is still exact.
type WireResult struct {
	Completed []setsystem.SetID `json:"completed"`
	Benefit   float64           `json:"benefit"`
	Assigned  []int32           `json:"assigned"`
}

// wireResult converts a drained engine result to its wire shape.
func wireResult(r *core.Result) WireResult {
	return WireResult{Completed: r.Completed, Benefit: r.Benefit, Assigned: r.Assigned}
}

// Core converts the wire shape back to a core.Result (the client's drain
// path).
func (r WireResult) Core() *core.Result {
	return &core.Result{Completed: r.Completed, Benefit: r.Benefit, Assigned: r.Assigned}
}

// MetricsSnapshot is an engine.Snapshot on the wire (see engine.Snapshot
// for field semantics).
type MetricsSnapshot struct {
	Submitted       uint64  `json:"submitted"`
	Processed       uint64  `json:"processed"`
	Batches         uint64  `json:"batches"`
	Assigned        uint64  `json:"assigned"`
	Dropped         uint64  `json:"dropped"`
	CompletedSets   int     `json:"completed_sets"`
	CompletedWeight float64 `json:"completed_weight"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	ElementsPerSec  float64 `json:"elements_per_sec"`
}

// wireSnapshot converts an engine snapshot to its wire shape, rounding
// non-finite rates (possible only on a zero-duration clock) to zero.
func wireSnapshot(s engine.Snapshot) MetricsSnapshot {
	rate := s.ElementsPerSec
	if math.IsInf(rate, 0) || math.IsNaN(rate) {
		rate = 0
	}
	return MetricsSnapshot{
		Submitted:       s.Submitted,
		Processed:       s.Processed,
		Batches:         s.Batches,
		Assigned:        s.Assigned,
		Dropped:         s.Dropped,
		CompletedSets:   s.CompletedSets,
		CompletedWeight: s.CompletedWeight,
		ElapsedSeconds:  s.Elapsed.Seconds(),
		ElementsPerSec:  rate,
	}
}

// DrainResponse is the body of POST /v1/instances/{id}/drain: the final
// result — bit-for-bit identical to a serial HashRandPr run under the
// instance's seed — and the frozen metrics. Drain is idempotent; repeated
// drains return the same result.
type DrainResponse struct {
	Result  WireResult      `json:"result"`
	Metrics MetricsSnapshot `json:"metrics"`
}

// InstanceStatus is one instance's row in GET /v1/instances and the body
// of GET /v1/instances/{id}.
type InstanceStatus struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	State string `json:"state"`
	Seed  uint64 `json:"seed"`
	// Policy is the instance's resolved admission-policy name.
	Policy string `json:"policy"`
	Shards int    `json:"shards"`
	// Sets is m, the number of sets in the instance's universe.
	Sets    int             `json:"sets"`
	Metrics MetricsSnapshot `json:"metrics"`
}

// ListResponse is the body of GET /v1/instances.
type ListResponse struct {
	Instances []InstanceStatus `json:"instances"`
}

// PolicyDescription is one row of GET /v1/policies: a registered
// admission-policy name a RegisterRequest may carry, and the registry's
// one-line description of it.
type PolicyDescription struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// PoliciesResponse is the body of GET /v1/policies, sorted by name.
type PoliciesResponse struct {
	Policies []PolicyDescription `json:"policies"`
}

// DecisionsResponse is the body of GET /v1/instances/{id}/decisions:
// the most recent flushed entries of the instance's sampled decision
// log, oldest first (newest last). Available only when the server runs
// with a decision log (ospserve -decision-log); otherwise the endpoint
// answers 404.
type DecisionsResponse struct {
	Instance string `json:"instance"`
	// SampleEvery is the log's per-shard sampling period: every Nth
	// decision of each shard is recorded. 1 means every decision.
	SampleEvery int `json:"sample_every"`
	// Decisions is the retained tail, bounded by the log's tail size and
	// the request's ?n= parameter. The entry schema is obs.Decision,
	// identical to the JSON-lines sink format (docs/OPERATIONS.md).
	Decisions []obs.Decision `json:"decisions"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
