package serve

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// ---- exposition parser (the satellite's parser-based /metrics test) ----

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promFamily is one metric family: its metadata plus every sample that
// belongs to it (for histograms that includes _bucket/_sum/_count).
type promFamily struct {
	help, kind string
	samples    []promSample
}

// baseFamily strips the histogram sample suffixes back to the family
// name the HELP/TYPE lines declare.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// parseExposition parses Prometheus text format 0.0.4 strictly enough
// to validate well-formedness: HELP/TYPE handling, sample lines with
// quoted/escaped label values, float values.
func parseExposition(t *testing.T, r io.Reader) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	fam := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			fam(name).help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: TYPE without kind: %q", lineNo, line)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid TYPE %q", lineNo, kind)
			}
			if fams[name] != nil && fams[name].kind != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			fam(name).kind = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s := parseSampleLine(t, lineNo, line)
		fam(baseFamily(s.name)).samples = append(fam(baseFamily(s.name)).samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// parseSampleLine parses `name{k="v",...} value` or `name value`.
func parseSampleLine(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		rest = rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", lineNo, line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			// Scan the quoted value honoring backslash escapes.
			var val strings.Builder
			j := 0
			for ; j < len(rest); j++ {
				if rest[j] == '\\' && j+1 < len(rest) {
					switch rest[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c", lineNo, rest[j+1])
					}
					j++
					continue
				}
				if rest[j] == '"' {
					break
				}
				val.WriteByte(rest[j])
			}
			if j == len(rest) {
				t.Fatalf("line %d: unterminated label value in %q", lineNo, line)
			}
			s.labels[key] = val.String()
			rest = rest[j+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "} ") {
				rest = rest[2:]
				break
			}
			t.Fatalf("line %d: malformed label block in %q", lineNo, line)
		}
	} else {
		name, v, ok := strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("line %d: no value in %q", lineNo, line)
		}
		s.name, rest = name, v
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil && strings.TrimSpace(rest) != "+Inf" {
		t.Fatalf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

// labelsWithoutLe renders a sample's label set minus le, as a stable
// grouping key for histogram series.
func labelsWithoutLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, labels[k])
	}
	return b.String()
}

// validateExposition runs the well-formedness checks over a parsed
// scrape: every family has HELP and TYPE, histogram buckets are
// cumulative (monotone nondecreasing in le order), the +Inf bucket
// exists and equals _count.
func validateExposition(t *testing.T, fams map[string]*promFamily) {
	t.Helper()
	if len(fams) == 0 {
		t.Fatal("empty exposition")
	}
	for name, f := range fams {
		if f.help == "" {
			t.Errorf("family %s has no HELP", name)
		}
		if f.kind == "" {
			t.Errorf("family %s has no TYPE", name)
		}
		if f.kind != "histogram" {
			continue
		}
		type series struct {
			bounds []float64
			counts []float64
			count  float64
			hasCnt bool
			hasSum bool
			hasInf bool
			inf    float64
		}
		groups := map[string]*series{}
		group := func(s promSample) *series {
			key := labelsWithoutLe(s.labels)
			g, ok := groups[key]
			if !ok {
				g = &series{}
				groups[key] = g
			}
			return g
		}
		for _, s := range f.samples {
			switch s.name {
			case name + "_bucket":
				le, ok := s.labels["le"]
				if !ok {
					t.Errorf("%s: bucket without le label", name)
					continue
				}
				g := group(s)
				if le == "+Inf" {
					g.hasInf, g.inf = true, s.value
					continue
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("%s: unparseable le %q", name, le)
					continue
				}
				g.bounds = append(g.bounds, bound)
				g.counts = append(g.counts, s.value)
			case name + "_count":
				g := group(s)
				g.hasCnt, g.count = true, s.value
			case name + "_sum":
				group(s).hasSum = true
			default:
				t.Errorf("%s: stray sample %s in histogram family", name, s.name)
			}
		}
		for key, g := range groups {
			if !g.hasCnt || !g.hasSum || !g.hasInf {
				t.Errorf("%s{%s}: incomplete histogram (count=%v sum=%v +Inf=%v)",
					name, key, g.hasCnt, g.hasSum, g.hasInf)
				continue
			}
			if g.inf != g.count {
				t.Errorf("%s{%s}: +Inf bucket %v != count %v", name, key, g.inf, g.count)
			}
			sort.Sort(&boundSort{g.bounds, g.counts})
			for i := 1; i < len(g.counts); i++ {
				if g.counts[i] < g.counts[i-1] {
					t.Errorf("%s{%s}: bucket counts not cumulative at le=%v: %v < %v",
						name, key, g.bounds[i], g.counts[i], g.counts[i-1])
				}
			}
			if n := len(g.counts); n > 0 && g.counts[n-1] > g.inf {
				t.Errorf("%s{%s}: last finite bucket %v exceeds +Inf %v", name, key, g.counts[n-1], g.inf)
			}
		}
	}
}

// boundSort sorts bucket bounds and their counts together.
type boundSort struct{ bounds, counts []float64 }

func (b *boundSort) Len() int           { return len(b.bounds) }
func (b *boundSort) Less(i, j int) bool { return b.bounds[i] < b.bounds[j] }
func (b *boundSort) Swap(i, j int) {
	b.bounds[i], b.bounds[j] = b.bounds[j], b.bounds[i]
	b.counts[i], b.counts[j] = b.counts[j], b.counts[i]
}

// scrape fetches /metrics through the handler and parses it.
func scrape(t *testing.T, s *Server) map[string]*promFamily {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	return parseExposition(t, rec.Body)
}

// TestMetricsExpositionWellFormed drives a workload through both ingest
// codecs, several error responses and a drain, then validates the whole
// scrape with the exposition parser — every family has HELP/TYPE,
// histogram buckets are cumulative and +Inf equals _count — and checks
// the new server-level families are present and consistent.
func TestMetricsExpositionWellFormed(t *testing.T) {
	dlog := obs.NewDecisionLog(obs.DecisionLogConfig{SampleEvery: 4, FlushEvery: time.Hour})
	defer dlog.Close()
	s := New(Config{Decisions: dlog})
	defer s.Shutdown(t.Context())

	inst := uniformInst(t, 60, 1200, 5, 17)
	id := register(t, s, inst, 11)
	// JSON ingest.
	rec := do(t, s, "POST", "/v1/instances/"+id+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements[:600])}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
	}
	// Binary ingest.
	frame := wire.AppendElements(nil, inst.Elements[600:])
	if rec := doBinary(t, s, id, frame); rec.Code != http.StatusOK {
		t.Fatalf("binary ingest: status %d", rec.Code)
	}
	// Provoke countable non-2xx outcomes.
	do(t, s, "GET", "/v1/instances/i-999", nil, nil)          // 404
	do(t, s, "POST", "/v1/instances", RegisterRequest{}, nil) // 400
	do(t, s, "GET", "/nowhere", nil, nil)                     // unrouted
	do(t, s, "POST", "/v1/instances/"+id+"/drain", nil, nil)  // 200
	do(t, s, "GET", "/v1/instances/"+id+"/decisions?n=5", nil, nil)

	fams := scrape(t, s)
	validateExposition(t, fams)

	hist, ok := fams["osp_stage_duration_seconds"]
	if !ok || hist.kind != "histogram" {
		t.Fatal("osp_stage_duration_seconds missing or not a histogram")
	}
	stages := map[string]bool{}
	for _, smp := range hist.samples {
		stages[smp.labels["stage"]] = true
	}
	for _, want := range []string{"ingest_decode", "queue_wait", "decide", "request"} {
		if !stages[want] {
			t.Errorf("stage %q has no series", want)
		}
	}
	// Both codecs decoded and the engine ran, so these stages observed.
	for _, smp := range hist.samples {
		if smp.name == "osp_stage_duration_seconds_count" &&
			(smp.labels["stage"] == "ingest_decode" || smp.labels["stage"] == "request") &&
			smp.value == 0 {
			t.Errorf("stage %q observed nothing", smp.labels["stage"])
		}
	}

	httpFam, ok := fams["osp_http_requests_total"]
	if !ok || httpFam.kind != "counter" {
		t.Fatal("osp_http_requests_total missing or not a counter")
	}
	seen := map[string]bool{}
	for _, smp := range httpFam.samples {
		seen[smp.labels["handler"]+"|"+smp.labels["code"]] = true
	}
	for _, want := range []string{
		"POST /v1/instances/{id}/elements|200",
		"GET /v1/instances/{id}|404",
		"POST /v1/instances|400",
		"POST /v1/instances|201",
		"other|404",
	} {
		if !seen[want] {
			t.Errorf("no osp_http_requests_total series for %q (have %v)", want, seen)
		}
	}

	for _, name := range []string{
		"osp_decision_log_flushed_total", "osp_decision_log_dropped_total",
		"osp_decision_log_sample_every", "osp_build_info", "osp_go_goroutines",
		"osp_go_heap_alloc_bytes", "osp_go_gc_pause_seconds_total",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("family %s missing from scrape", name)
		}
	}
	if v := fams["osp_decision_log_sample_every"].samples[0].value; v != 4 {
		t.Errorf("osp_decision_log_sample_every = %v, want 4", v)
	}
}

// TestMetricsExpositionLiveScrape runs the same parser checks against a
// live server scrape named by OSP_METRICS_URL — CI's service-smoke job
// points it at the running ospserve. Skipped when the variable is
// unset.
func TestMetricsExpositionLiveScrape(t *testing.T) {
	url := os.Getenv("OSP_METRICS_URL")
	if url == "" {
		t.Skip("OSP_METRICS_URL not set; live-scrape validation runs in service-smoke CI")
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: status %d", url, resp.StatusCode)
	}
	validateExposition(t, parseExposition(t, resp.Body))
}

// TestDecisionsEndpoint covers GET /v1/instances/{id}/decisions: tail
// contents after sampled ingest, the ?n= bound, the 404 for unknown
// instances, and the schema fields the operator relies on.
func TestDecisionsEndpoint(t *testing.T) {
	dlog := obs.NewDecisionLog(obs.DecisionLogConfig{SampleEvery: 1, FlushEvery: time.Hour})
	defer dlog.Close()
	s := New(Config{Decisions: dlog})
	defer s.Shutdown(t.Context())

	inst := uniformInst(t, 40, 300, 4, 9)
	id := register(t, s, inst, 3)
	rec := do(t, s, "POST", "/v1/instances/"+id+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements)}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
	}
	do(t, s, "POST", "/v1/instances/"+id+"/drain", nil, nil)

	var resp DecisionsResponse
	if rec := do(t, s, "GET", "/v1/instances/"+id+"/decisions", nil, &resp); rec.Code != http.StatusOK {
		t.Fatalf("decisions: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Instance != id || resp.SampleEvery != 1 {
		t.Fatalf("decisions response header = %+v", resp)
	}
	if len(resp.Decisions) == 0 {
		t.Fatal("no decisions in tail after sampling every element")
	}
	for _, d := range resp.Decisions {
		if d.Instance != id {
			t.Fatalf("decision labeled %q, want %q", d.Instance, id)
		}
		if d.Policy != "randpr" {
			t.Fatalf("decision policy %q, want randpr", d.Policy)
		}
		if d.Element >= uint64(len(inst.Elements)) {
			t.Fatalf("decision element %d out of range", d.Element)
		}
		if d.Members < 1 || d.TimeUnixNano == 0 {
			t.Fatalf("decision not populated: %+v", d)
		}
	}

	var bounded DecisionsResponse
	do(t, s, "GET", "/v1/instances/"+id+"/decisions?n=3", nil, &bounded)
	if len(bounded.Decisions) != 3 {
		t.Fatalf("?n=3 returned %d decisions", len(bounded.Decisions))
	}
	last := resp.Decisions[len(resp.Decisions)-3:]
	for i := range last {
		if bounded.Decisions[i] != last[i] {
			t.Fatalf("?n=3 did not return the newest entries")
		}
	}

	if rec := do(t, s, "GET", "/v1/instances/"+id+"/decisions?n=zero", nil, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "GET", "/v1/instances/i-999/decisions", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown instance: status %d, want 404", rec.Code)
	}
}

// TestDecisionsEndpointDisabled pins the opt-in contract: without a
// decision log the endpoint is 404 for live instances too.
func TestDecisionsEndpointDisabled(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(t.Context())
	inst := uniformInst(t, 20, 50, 3, 2)
	id := register(t, s, inst, 1)
	rec := do(t, s, "GET", "/v1/instances/"+id+"/decisions", nil, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("decisions with log disabled: status %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "decision log disabled") {
		t.Errorf("unhelpful 404 body: %s", rec.Body.String())
	}
}

// TestInstanceRemovalFlushesDecisions pins the detach hook: removing an
// instance flushes its rings to the sink and stops serving its tail.
func TestInstanceRemovalFlushesDecisions(t *testing.T) {
	sink := new(obs.MemorySink)
	dlog := obs.NewDecisionLog(obs.DecisionLogConfig{SampleEvery: 1, FlushEvery: time.Hour, Sink: sink})
	defer dlog.Close()
	s := New(Config{Decisions: dlog})
	defer s.Shutdown(t.Context())

	inst := uniformInst(t, 20, 64, 3, 5)
	id := register(t, s, inst, 7)
	do(t, s, "POST", "/v1/instances/"+id+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements)}, nil)
	if rec := do(t, s, "DELETE", "/v1/instances/"+id, nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("remove: status %d", rec.Code)
	}
	if sink.Len() != len(inst.Elements) {
		t.Errorf("sink holds %d decisions after removal, want %d", sink.Len(), len(inst.Elements))
	}
	if _, ok := dlog.Tail(id, 0); ok {
		t.Error("removed instance still has a registered decision logger")
	}
}

// TestPprofGate covers the -pprof flag's server half: the profiling
// surface exists only when enabled.
func TestPprofGate(t *testing.T) {
	on := New(Config{EnablePprof: true})
	defer on.Shutdown(t.Context())
	rec := httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: GET /debug/pprof/ status %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/heap?debug=1", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: heap profile status %d, want 200", rec.Code)
	}

	off := New(Config{})
	defer off.Shutdown(t.Context())
	rec = httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ status %d, want 404", rec.Code)
	}
}

// TestBinaryIngestSteadyStateAllocsTelemetry is the telemetry-enabled
// twin of TestBinaryIngestSteadyStateAllocs and the CI alloc gate the
// tentpole demands: with decision-log sampling, stage histograms and
// the HTTP middleware all active, warm binary ingest must still not
// allocate per element.
func TestBinaryIngestSteadyStateAllocsTelemetry(t *testing.T) {
	dlog := obs.NewDecisionLog(obs.DecisionLogConfig{
		SampleEvery: 8,
		RingSize:    512,
		FlushEvery:  time.Millisecond, // drainer stays hot during the probe
	})
	defer dlog.Close()
	inst := uniformInst(t, 200, 16384, 8, 21)
	s := New(Config{Decisions: dlog})
	defer s.Shutdown(t.Context())
	id := register(t, s, inst, 5)

	const batch = 2048
	frames := make([][]byte, 0, len(inst.Elements)/batch)
	for off := 0; off+batch <= len(inst.Elements); off += batch {
		frames = append(frames, wire.AppendElements(nil, inst.Elements[off:off+batch]))
	}
	body := new(bodyReader)
	w := &discardResponseWriter{h: make(http.Header, 4)}
	req := httptest.NewRequest("POST", "/v1/instances/"+id+"/elements", body)
	req.Header.Set("Content-Type", wire.ContentTypeBatch)

	send := func(frame []byte) {
		body.Reset(frame)
		req.ContentLength = int64(len(frame))
		req.Body = body
		for k := range w.h {
			delete(w.h, k)
		}
		s.ServeHTTP(w, req)
	}
	for _, frame := range frames[:6] {
		send(frame)
	}
	pos := 0
	allocs := testing.AllocsPerRun(30, func() {
		send(frames[pos%len(frames)])
		pos++
	})
	perElement := allocs / batch
	t.Logf("warm binary ingest with telemetry: %.1f allocs/request over %d elements (%.4f/element)", allocs, batch, perElement)
	if perElement > 0.05 {
		t.Errorf("telemetry-enabled binary ingest allocates %.4f/element (%v per %d-element request), want per-request-constant ~0",
			perElement, allocs, batch)
	}
}
