package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/setsystem"
)

// Errors reported by the pool.
var (
	// ErrPoolClosed is returned once Shutdown has begun: no new instances
	// and no further ingestion.
	ErrPoolClosed = errors.New("serve: pool is shutting down")
	// ErrPoolFull is returned when registering would exceed MaxInstances.
	ErrPoolFull = errors.New("serve: instance limit reached")
	// ErrUnknownInstance is returned for an id the pool does not hold.
	ErrUnknownInstance = errors.New("serve: unknown instance")
)

// Spec describes one instance registration: the up-front information, the
// shared policy seed, engine sizing plus admission-policy name
// (Engine.Policy, "" = randpr), and an optional metrics label.
type Spec struct {
	Info   core.Info
	Seed   uint64
	Engine engine.Config
	Label  string
}

// Instance is one registered set system and its live engine. The engine's
// Submit/Drain contract is single-goroutine; Instance serializes
// concurrent HTTP handlers onto that contract with a mutex, while verdict
// computation — a pure function of the element and the fixed priority
// vector — stays outside the lock.
type Instance struct {
	id    string
	label string
	seed  uint64
	info  core.Info

	mu  sync.Mutex // serializes Submit/Drain on the engine
	eng *engine.Engine

	// final marks a drain requested by a client (POST .../drain, DELETE)
	// as opposed to the indiscriminate engine drain a graceful shutdown
	// performs on every instance. Snapshots record it so a restore knows
	// whether the instance's stream logically ended (restore as drained,
	// terminal Result intact) or was merely interrupted (restore as
	// streaming, ready for the rest of the stream).
	final atomic.Bool

	// rw fences lane submissions against Drain: every IngestLane submit
	// holds the read side, Drain takes the write side (after mu), so
	// concurrent stream connections ingest in parallel — no shared lock
	// on the hot path — yet can never race the engine's channel close.
	// Lock order is mu before rw; lanes never touch mu.
	rw sync.RWMutex
}

// ID returns the server-assigned instance identifier.
func (in *Instance) ID() string { return in.id }

// Label returns the metrics label supplied at registration ("" if none).
func (in *Instance) Label() string { return in.label }

// Seed returns the shared policy seed.
func (in *Instance) Seed() uint64 { return in.seed }

// Policy returns the resolved admission-policy name of the instance's
// engine ("randpr" for the default).
func (in *Instance) Policy() string { return in.eng.PolicyName() }

// State returns the engine's lifecycle state.
func (in *Instance) State() engine.State { return in.eng.State() }

// Snapshot returns the engine's live metrics counters.
func (in *Instance) Snapshot() engine.Snapshot { return in.eng.Metrics().Snapshot() }

// Shards returns the resolved shard-worker count.
func (in *Instance) Shards() int { return in.eng.NumShards() }

// NumSets returns m, the number of sets in the instance's universe.
func (in *Instance) NumSets() int { return in.info.NumSets() }

// Status assembles the instance's wire status row.
func (in *Instance) Status() InstanceStatus {
	return InstanceStatus{
		ID:      in.id,
		Label:   in.label,
		State:   in.State().String(),
		Seed:    in.seed,
		Policy:  in.Policy(),
		Shards:  in.Shards(),
		Sets:    in.NumSets(),
		Metrics: wireSnapshot(in.Snapshot()),
	}
}

// Validate checks a batch without ingesting anything, returning the index
// and cause of the first invalid element. Ingest batches are atomic:
// handlers validate the whole batch up front so a malformed element
// rejects the batch before any sibling is submitted.
func (in *Instance) Validate(els []setsystem.Element) error {
	m := in.info.NumSets()
	for i, el := range els {
		if err := setsystem.CheckElement(el, m); err != nil {
			return fmt.Errorf("element %d: %w", i, err)
		}
	}
	return nil
}

// Ingest submits a batch the caller has already passed through Validate
// to the engine in order, blocking on engine backpressure when shard
// queues are full. The engine's SubmitValidated path skips the second
// per-member validation scan. It returns engine.ErrDrained if the
// stream was already closed.
func (in *Instance) Ingest(els []setsystem.Element) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, el := range els {
		if err := in.eng.SubmitValidated(el); err != nil {
			return err
		}
	}
	return nil
}

// IngestBatch submits one borrowed, filled and validated engine batch —
// the binary wire path's zero-copy unit — serialized onto the engine's
// single-submitter contract like Ingest. Ownership of the batch passes
// to the engine whatever the outcome.
func (in *Instance) IngestBatch(b *engine.Batch) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.eng.SubmitBatch(b)
}

// IngestLane is a per-connection batch submitter: each stream
// connection gets its own lane (engine.Lane semantics — a private
// shard round-robin cursor), so N connections ingesting into one
// instance contend on nothing but the shard queues themselves. The
// instance's RWMutex read side fences every submit against Drain.
type IngestLane struct {
	in   *Instance
	lane *engine.Lane
}

// IngestLane returns a lane whose shard round-robin starts at i mod
// NumShards — hand each connection a distinct index so concurrent
// connections spread across shards from their first batch.
func (in *Instance) IngestLane(i int) *IngestLane {
	return &IngestLane{in: in, lane: in.eng.Lane(i)}
}

// IngestBatch submits one borrowed (or aliased), filled and validated
// engine batch on this lane. Ownership of the batch passes to the
// engine whatever the outcome, exactly as Instance.IngestBatch.
func (l *IngestLane) IngestBatch(b *engine.Batch) error {
	l.in.rw.RLock()
	defer l.in.rw.RUnlock()
	return l.lane.SubmitBatch(b)
}

// MarkFinal records that the instance's stream was closed by a client
// request rather than by shutdown. Called by the drain/remove handlers
// before they Drain.
func (in *Instance) MarkFinal() { in.final.Store(true) }

// Final reports whether the instance was client-drained (see MarkFinal).
func (in *Instance) Final() bool { return in.final.Load() }

// Drain closes the instance's stream and returns the final result,
// bit-for-bit identical to a serial HashRandPr run under the same seed.
// Idempotent. It excludes the mutex-serialized HTTP paths via mu and
// every stream lane via the write side of rw: a lane submit in flight
// completes (shard workers keep consuming until the engine closes
// their queues), then the drain proceeds.
func (in *Instance) Drain() (*core.Result, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rw.Lock()
	defer in.rw.Unlock()
	return in.eng.Drain()
}

// Verdicts computes the immediate admit/drop verdict for every element of
// a batch: the engine's shards will reach — or have reached — exactly the
// same decisions, because every policy's decide rule depends only on the
// element and the frozen per-instance policy state (Section 3.1,
// generalized by the policy contract). The computation is pure and runs
// outside the instance lock, so concurrent verdict requests never contend
// with ingestion.
func (in *Instance) Verdicts(els []setsystem.Element) []Verdict {
	dec := in.eng.Policy()
	verdicts := make([]Verdict, len(els))
	var buf []setsystem.SetID
	for i, el := range els {
		buf = dec.Decide(el.Members, el.Capacity, buf)
		admitted := append([]setsystem.SetID(nil), buf...)
		verdicts[i] = Verdict{Admitted: admitted, Dropped: droppedOf(el.Members, admitted)}
	}
	return verdicts
}

// droppedOf returns members \ admitted. Both inputs are in ascending
// SetID order, so a single merge pass suffices.
func droppedOf(members, admitted []setsystem.SetID) []setsystem.SetID {
	dropped := make([]setsystem.SetID, 0, len(members)-len(admitted))
	j := 0
	for _, s := range members {
		if j < len(admitted) && admitted[j] == s {
			j++
			continue
		}
		dropped = append(dropped, s)
	}
	return dropped
}

// Pool owns every registered instance: registration, lookup, removal, and
// the graceful shutdown that drains all live engines. All methods are
// safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	byID   map[string]*Instance
	nextID int
	max    int
	closed bool

	// Telemetry hooks, set once before serving (SetTelemetry). attachTel
	// builds the telemetry bundle a new engine records into; detachTel
	// flushes and forgets an instance's decision logger when the instance
	// is removed or its registration rolls back.
	attachTel func(id, policy string, shards int) *obs.EngineTelemetry
	detachTel func(id string)
}

// SetTelemetry installs the pool's telemetry hooks: attach is called
// during Register with the new instance's ID, resolved policy name and
// resolved shard count, and its return value becomes the engine's
// Telemetry config; detach is called when an instance is removed (or a
// registration fails after attach). Either may be nil. Must be called
// before the pool serves registrations.
func (p *Pool) SetTelemetry(attach func(id, policy string, shards int) *obs.EngineTelemetry, detach func(id string)) {
	p.attachTel = attach
	p.detachTel = detach
}

// NewPool returns a pool admitting at most max concurrent instances
// (max <= 0 means the default, 1024).
func NewPool(max int) *Pool {
	if max <= 0 {
		max = 1024
	}
	return &Pool{byID: make(map[string]*Instance), max: max}
}

// Register creates an instance with a fresh engine and returns it. The
// engine — whose construction allocates the priority vector, per-shard
// counter arrays and the pre-filled batch free list, and spawns the
// shard goroutines — is built OUTSIDE the pool mutex, so a large
// registration never stalls the Get/Len/Instances calls every other
// handler and the /metrics scrape depend on.
func (p *Pool) Register(spec Spec) (*Instance, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if len(p.byID) >= p.max {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w (max %d)", ErrPoolFull, p.max)
	}
	p.nextID++
	id := "i-" + strconv.Itoa(p.nextID)
	p.mu.Unlock()

	// Resolve the policy here (rather than inside engine.New) so the
	// telemetry attach hook sees the resolved name the engine will report.
	pol, err := core.LookupPolicy(spec.Engine.Policy)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	detach := func() {}
	if p.attachTel != nil {
		spec.Engine.Telemetry = p.attachTel(id, pol.Name(), spec.Engine.Resolved().Shards)
		if p.detachTel != nil {
			detach = func() { p.detachTel(id) }
		}
	}
	eng, err := engine.NewWithPolicy(spec.Info, pol, spec.Seed, spec.Engine)
	if err != nil {
		detach()
		return nil, err
	}
	in := &Instance{
		id:    id,
		label: spec.Label,
		seed:  spec.Seed,
		info:  spec.Info,
		eng:   eng,
	}

	// Re-check under the lock: shutdown or a concurrent registration
	// burst may have won the race while the engine was being built. The
	// fresh engine is drained before rejecting so its shard goroutines
	// never leak.
	p.mu.Lock()
	switch {
	case p.closed:
		p.mu.Unlock()
		eng.Drain() //nolint:errcheck // fresh engine, nothing streamed
		detach()
		return nil, ErrPoolClosed
	case len(p.byID) >= p.max:
		p.mu.Unlock()
		eng.Drain() //nolint:errcheck
		detach()
		return nil, fmt.Errorf("%w (max %d)", ErrPoolFull, p.max)
	}
	p.byID[in.id] = in
	p.mu.Unlock()
	return in, nil
}

// Get returns the instance with the given id.
func (p *Pool) Get(id string) (*Instance, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	in, ok := p.byID[id]
	return in, ok
}

// Remove drains the instance (stopping its shard workers) and deletes it
// from the pool, freeing its memory. Its decision logger — if telemetry
// is attached — is flushed and unregistered, so sampled decisions
// already in the rings still reach the sink.
func (p *Pool) Remove(id string) error {
	p.mu.Lock()
	in, ok := p.byID[id]
	delete(p.byID, id)
	p.mu.Unlock()
	if !ok {
		return ErrUnknownInstance
	}
	_, err := in.Drain()
	if p.detachTel != nil {
		p.detachTel(id)
	}
	return err
}

// Instances returns the live instances sorted by registration order.
func (p *Pool) Instances() []*Instance {
	p.mu.Lock()
	out := make([]*Instance, 0, len(p.byID))
	for _, in := range p.byID {
		out = append(out, in)
	}
	p.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		return numericID(out[a].id) < numericID(out[b].id)
	})
	return out
}

// numericID extracts the registration counter from an "i-<n>" id.
func numericID(id string) int {
	n, _ := strconv.Atoi(id[len("i-"):])
	return n
}

// Len returns the number of live instances.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.byID)
}

// Closed reports whether Shutdown has begun.
func (p *Pool) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Shutdown begins graceful teardown: new registrations and further
// ingestion are refused with ErrPoolClosed, and every live engine is
// drained concurrently — each drain flushes pending batches through the
// shard workers and stops them, so in-flight elements are decided, not
// lost. Shutdown returns once every engine has drained or ctx expires
// (draining continues in the background on expiry). Idempotent.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	instances := make([]*Instance, 0, len(p.byID))
	for _, in := range p.byID {
		instances = append(instances, in)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for _, in := range instances {
			wg.Add(1)
			go func(in *Instance) {
				defer wg.Done()
				in.Drain() //nolint:errcheck // drained result is discarded at shutdown
			}(in)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown interrupted with engines still draining: %w", ctx.Err())
	}
}
