package serve

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// poolSpec builds a registration spec over a deterministic workload.
func poolSpec(t *testing.T, seed uint64) Spec {
	t.Helper()
	inst, err := workload.Uniform(workload.UniformConfig{M: 40, N: 2000, Load: 4, Capacity: 2},
		rand.New(rand.NewSource(int64(seed))))
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Info:   core.InfoOf(inst),
		Seed:   seed,
		Engine: engine.Config{Shards: 2, BatchSize: 16, QueueDepth: 2},
	}
}

// TestPoolGracefulShutdownUnderLoad is the engine-pool teardown test:
// several instances are mid-stream — submitters actively pushing against
// bounded queues — when Shutdown fires. Every engine must reach drained,
// in-flight batches must be decided (processed == submitted, nothing
// lost), and late submitters must be turned away cleanly.
func TestPoolGracefulShutdownUnderLoad(t *testing.T) {
	p := NewPool(0)
	const instances = 4

	type stream struct {
		in   *Instance
		stop chan struct{}
	}
	var streams []stream
	var wg sync.WaitGroup
	for k := 0; k < instances; k++ {
		seed := uint64(50 + k)
		inst, err := workload.Uniform(workload.UniformConfig{M: 40, N: 2000, Load: 4, Capacity: 2},
			rand.New(rand.NewSource(int64(seed))))
		if err != nil {
			t.Fatal(err)
		}
		in, err := p.Register(Spec{
			Info:   core.InfoOf(inst),
			Seed:   seed,
			Engine: engine.Config{Shards: 2, BatchSize: 16, QueueDepth: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		st := stream{in: in, stop: make(chan struct{})}
		streams = append(streams, st)
		wg.Add(1)
		go func(st stream) {
			defer wg.Done()
			// Loop the workload until shutdown cuts us off.
			for i := 0; ; i = (i + 1) % len(inst.Elements) {
				select {
				case <-st.stop:
					return
				default:
				}
				err := st.in.Ingest(inst.Elements[i : i+1])
				if errors.Is(err, engine.ErrDrained) {
					return // shutdown won the race — the expected exit
				}
				if err != nil {
					t.Errorf("mid-stream ingest error: %v", err)
					return
				}
			}
		}(st)
	}

	// Let every submitter get going, then pull the plug.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, st := range streams {
		close(st.stop)
	}
	wg.Wait()

	if !p.Closed() {
		t.Error("pool not closed after shutdown")
	}
	if _, err := p.Register(Spec{Info: core.Info{Weights: []float64{1}, Sizes: []int{1}}}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("register after shutdown = %v, want ErrPoolClosed", err)
	}
	for _, st := range streams {
		if got := st.in.State(); got != engine.StateDrained {
			t.Errorf("instance %s state after shutdown = %v, want drained", st.in.ID(), got)
		}
		s := st.in.Snapshot()
		if s.Processed != s.Submitted {
			t.Errorf("instance %s lost elements at shutdown: submitted %d, processed %d",
				st.in.ID(), s.Submitted, s.Processed)
		}
		// The drained result is still reachable and internally consistent.
		res, err := st.in.Drain()
		if err != nil {
			t.Errorf("drain after shutdown: %v", err)
			continue
		}
		var assigned uint64
		for _, c := range res.Assigned {
			assigned += uint64(c)
		}
		if assigned != s.Assigned {
			t.Errorf("instance %s: result assigns %d, metrics say %d", st.in.ID(), assigned, s.Assigned)
		}
	}

	// Shutdown is idempotent.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestPoolShutdownEmptyAndExpiredContext covers the trivial and the
// expired-context paths.
func TestPoolShutdownEmptyAndExpiredContext(t *testing.T) {
	p := NewPool(0)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Errorf("empty shutdown: %v", err)
	}

	p2 := NewPool(0)
	spec := poolSpec(t, 9)
	if _, err := p2.Register(spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Even with a dead context the single idle engine usually drains
	// first; accept either outcome but require the pool to be closed.
	_ = p2.Shutdown(ctx)
	if !p2.Closed() {
		t.Error("pool not closed after shutdown with expired context")
	}
}

// TestPoolRemoveUnknown pins the error.
func TestPoolRemoveUnknown(t *testing.T) {
	p := NewPool(0)
	if err := p.Remove("i-1"); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("Remove = %v, want ErrUnknownInstance", err)
	}
}

// TestPoolInstancesOrdered pins registration-order listing past id i-9
// (lexicographic would put i-10 before i-2).
func TestPoolInstancesOrdered(t *testing.T) {
	p := NewPool(0)
	for i := 0; i < 12; i++ {
		if _, err := p.Register(Spec{Info: core.Info{Weights: []float64{1}, Sizes: []int{1}}}); err != nil {
			t.Fatal(err)
		}
	}
	ins := p.Instances()
	if len(ins) != 12 {
		t.Fatalf("len(Instances) = %d", len(ins))
	}
	for i, in := range ins {
		if want := "i-" + strconv.Itoa(i+1); in.ID() != want {
			t.Errorf("Instances()[%d] = %s, want %s", i, in.ID(), want)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
