// Package cluster is the multi-node admission fabric: a coordinator
// that partitions instances across N admission-service nodes by
// consistent hashing, fans large instances out across nodes by element
// hash (the same split rule the engine uses for shards, one level up),
// forwards ingest over the stream transport, and merges per-node drains
// exactly like engine.Drain merges shard counts.
//
// The whole design rides on the policy contract: Setup is pure in
// (Info, seed) and Decide is pure in the element and the frozen state,
// so ANY node given the same registration is bit-for-bit identical to
// any other — the property that makes shards safe inside one process
// makes stateless replicas safe across machines. Three consequences the
// coordinator exploits:
//
//   - Placement is free. An instance can live on any node, or be split
//     across all of them by element hash, and the merged drain equals
//     the serial oracle — no placement decision can change a verdict.
//   - Failover is a replay, not a state transfer. A replacement node
//     re-registers from the append-only registration log and reaches
//     the exact policy state of the node it replaces, because that
//     state IS the registration.
//   - Merging is addition. Per-node Assigned counters sum exactly like
//     per-shard counters (integers commute); completion and benefit are
//     recomputed from the summed counts (DESIGN.md §15).
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/hashpr"
	"repro/osp"
)

// ringSeed salts the placement ring's hash so instance placement is
// independent of every other use of the instance ID.
const ringSeed = 0x05f0c1a9

// defaultVnodes is the virtual-node count per slot: enough that keys
// spread within ~20% of even across a handful of nodes, few enough that
// building the ring is microseconds.
const defaultVnodes = 64

// Ring is a consistent-hash ring over node SLOTS — positional indices
// 0..slots-1, not node addresses. Hashing the slot index instead of the
// address is what makes failover placement-stable: a replacement node
// takes over the dead node's slot and with it the exact key range, so
// no instance moves and no re-partitioning happens. (Classic
// address-hashed rings reshuffle ~1/N of the keyspace on replacement —
// here that would mean re-registering instances on nodes that never
// failed.)
type Ring struct {
	points []ringPoint // sorted by hash, ties broken by slot
	slots  int
}

type ringPoint struct {
	hash uint64
	slot int
}

// NewRing builds the ring for the given slot count; vnodes <= 0 takes
// the default. Deterministic: the same (slots, vnodes) always yields
// the same ring, on every machine.
func NewRing(slots, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	m := hashpr.Mixer{Seed: ringSeed}
	r := &Ring{points: make([]ringPoint, 0, slots*vnodes), slots: slots}
	for s := 0; s < slots; s++ {
		for v := 0; v < vnodes; v++ {
			h := m.Hash(uint64(s)<<20 | uint64(v))
			r.points = append(r.points, ringPoint{hash: h, slot: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].slot < r.points[j].slot
	})
	return r
}

// Slots returns the slot count the ring was built for.
func (r *Ring) Slots() int { return r.slots }

// Lookup maps a key (an instance ID) to its owning slot: the first
// ring point clockwise from the key's hash.
func (r *Ring) Lookup(key string) int {
	if r.slots == 1 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].slot
}

// hashKey hashes a string key onto the ring: FNV-1a folded through the
// SplitMix64 finalizer for avalanche. Deterministic across processes —
// a restarted coordinator computes identical placements.
func hashKey(key string) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return hashpr.Mixer{Seed: ringSeed}.Hash(h)
}

// ownerOf maps one element to the index (0..fan-1) of the node share it
// belongs to under element fan-out, by chaining the element's parent
// sets through the instance's seeded mixer — the cluster-level analogue
// of the engine's element→shard split. Like that split, ANY
// deterministic assignment is correct (decisions are pure in the
// element, so no split can change a verdict); hashing the membership
// keeps co-arriving elements of one set spread across nodes instead of
// hot-spotting one.
func ownerOf(m hashpr.Mixer, el osp.Element, fan int) int {
	h := m.Hash(uint64(len(el.Members)))
	for _, s := range el.Members {
		h = m.Hash(h ^ uint64(s))
	}
	return int(h % uint64(fan))
}

// validateSlot bounds-checks a slot index against the ring.
func (r *Ring) validateSlot(slot int) error {
	if slot < 0 || slot >= r.slots {
		return fmt.Errorf("cluster: slot %d out of range [0, %d)", slot, r.slots)
	}
	return nil
}
