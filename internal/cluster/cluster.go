package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashpr"
	"repro/internal/obs"
	"repro/osp"
	"repro/osp/client"
)

// Node names one admission-service node of the fleet.
type Node struct {
	// BaseURL is the node's HTTP API, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// StreamAddr is the node's raw-TCP stream listener (ospserve
	// -stream-listen), "" when the node is HTTP-only. The coordinator
	// forwards ingest over the stream when present and falls back to
	// binary HTTP per node otherwise (client.IngestAuto), so a mixed
	// fleet works — each node just runs at the best transport it speaks.
	StreamAddr string
}

// Config assembles a Coordinator.
type Config struct {
	// Nodes is the fleet, in slot order. Slot indices are the stable
	// identity: a replacement node (ReplaceNode) takes over its
	// predecessor's slot, key range and fan-out shares.
	Nodes []Node
	// Journal retains every acknowledged element share per node so
	// failover is exact: a replacement node receives the dead node's
	// full element history after the registration replay, and the
	// merged drain is bit-for-bit equal to an uninterrupted run. Off,
	// failover loses the elements the dead node had acknowledged —
	// counted per instance (Instance.Lost) and in the cluster metrics —
	// and resends only the unacknowledged in-flight shares. The cost is
	// O(elements) coordinator memory per live instance.
	Journal bool
	// Log is the registration log; nil means a fresh in-memory log
	// (NewLog). Pass an OpenLog'd file-backed log for durability.
	Log *Log
	// HTTPClient overrides the http.Client used for every node;
	// nil means one shared plain &http.Client{}.
	HTTPClient *http.Client
	// Vnodes is the consistent-hash virtual-node count per slot;
	// 0 means the default (64).
	Vnodes int
	// StreamConns is the number of striped TCP connections each node's
	// stream client opens (client.WithStreamConns); 0 or 1 means a
	// single connection. Only nodes with a StreamAddr are affected.
	StreamConns int
	// Retry, when set, threads a deadline-budgeted retry policy through
	// every node client's ingest and drain paths (client.WithRetry) — a
	// share hitting a node mid-restart is retried under backoff before
	// the coordinator declares the forward failed and retains it.
	Retry *client.RetryPolicy
}

// Spec describes one cluster-level instance registration.
type Spec struct {
	// Info is the up-front information (weights, sizes).
	Info osp.Info
	// Seed is the shared policy seed — every node derives the identical
	// policy state from it, which is what makes placement free and
	// failover a replay.
	Seed uint64
	// Engine sizes the engine on EACH hosting node (Shards is shards
	// per node, so a fan-out instance on N nodes runs N×Shards shard
	// workers fleet-wide) and names the admission policy.
	Engine osp.EngineConfig
	// FanOut splits the instance's element stream across every node by
	// element hash — the engine's shard split lifted one level. False
	// pins the whole instance to the slot the ring assigns its ID.
	FanOut bool
	// Label tags the instance's metrics series.
	Label string
}

// NodeError reports a failed operation against one node, carrying the
// slot so the caller knows which ReplaceNode would repair it.
type NodeError struct {
	// Slot is the node's position in Config.Nodes.
	Slot int
	// Node is the node's HTTP base URL.
	Node string
	// Err is the underlying client error.
	Err error
}

// Error implements error.
func (e *NodeError) Error() string {
	return fmt.Sprintf("cluster: node %d (%s): %v", e.Slot, e.Node, e.Err)
}

// Unwrap returns the underlying client error.
func (e *NodeError) Unwrap() error { return e.Err }

// member is one live node: its client plus per-node traffic counters
// (reset when a replacement takes the slot — the series' addr label
// changes with it).
type member struct {
	slot     int
	cfg      Node
	c        *client.Client
	batches  atomic.Uint64
	elements atomic.Uint64
	errs     atomic.Uint64
}

func dialMember(slot int, cfg Node, hc *http.Client, conns int, retry *client.RetryPolicy) (*member, error) {
	opts := []client.Option{client.WithHTTPClient(hc)}
	if cfg.StreamAddr != "" {
		opts = append(opts, client.WithStreamAddr(cfg.StreamAddr))
		if conns > 1 {
			opts = append(opts, client.WithStreamConns(conns))
		}
	}
	if retry != nil {
		opts = append(opts, client.WithRetry(*retry))
	}
	c, err := client.New(cfg.BaseURL, opts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", slot, err)
	}
	return &member{slot: slot, cfg: cfg, c: c}, nil
}

// Coordinator is the cluster's front door: it owns instance placement,
// forwards ingest to the owning nodes, merges drains, and replays the
// registration log onto replacement nodes. Safe for concurrent use;
// concurrent Ingest calls on ONE instance serialize (per-node element
// order is part of the arrival order the oracle sees).
type Coordinator struct {
	journal bool
	conns   int
	ring    *Ring
	log     *Log
	httpc   *http.Client
	retry   *client.RetryPolicy

	mu     sync.Mutex
	nodes  []*member
	insts  map[string]*Instance
	health *Monitor // attached by StartHealth, nil without one
	nextID int

	failovers atomic.Uint64
	resent    atomic.Uint64
	lost      atomic.Uint64
	forward   obs.Histogram // per-share forward round-trip latency
}

// New builds a Coordinator over the given fleet. Nodes are dialed
// lazily — construction does not require the fleet to be up.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: at least one node required")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	lg := cfg.Log
	if lg == nil {
		lg = NewLog()
	}
	co := &Coordinator{
		journal: cfg.Journal,
		conns:   cfg.StreamConns,
		ring:    NewRing(len(cfg.Nodes), cfg.Vnodes),
		log:     lg,
		httpc:   hc,
		retry:   cfg.Retry,
		nodes:   make([]*member, len(cfg.Nodes)),
		insts:   make(map[string]*Instance),
	}
	for i, n := range cfg.Nodes {
		m, err := dialMember(i, n, hc, cfg.StreamConns, cfg.Retry)
		if err != nil {
			return nil, err
		}
		co.nodes[i] = m
	}
	return co, nil
}

// Nodes returns the current fleet in slot order (replacements included).
func (co *Coordinator) Nodes() []Node {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]Node, len(co.nodes))
	for i, m := range co.nodes {
		out[i] = m.cfg
	}
	return out
}

// Log returns the coordinator's registration log.
func (co *Coordinator) Log() *Log { return co.log }

// Instance is a handle to one cluster-level instance: its hosting
// slots, per-node client handles, and the retained element shares that
// make failover exact (journal) or accounted (Lost).
type Instance struct {
	co     *Coordinator
	id     string
	spec   Spec
	fanOut bool
	mixer  hashpr.Mixer
	slots  []int // hosting slots, ascending

	mu      sync.Mutex
	handles map[int]*client.Instance
	journal map[int][][]osp.Element // acked shares per slot (Config.Journal)
	acked   map[int]int             // acked elements per slot
	failed  map[int][][]osp.Element // unacked in-flight shares per slot, in order
	lost    uint64
	drained *osp.Result
}

// Register places a new instance on the fleet: on every node when
// spec.FanOut, else on the single slot the consistent-hash ring assigns
// its ID. The registration is appended to the log before any node sees
// it, so a crash between log append and node registration errs on the
// side of replayable.
func (co *Coordinator) Register(ctx context.Context, spec Spec) (*Instance, error) {
	if len(spec.Info.Weights) == 0 {
		return nil, errors.New("cluster: register: at least one set required")
	}
	if len(spec.Info.Weights) != len(spec.Info.Sizes) {
		return nil, fmt.Errorf("cluster: register: %d weights but %d sizes",
			len(spec.Info.Weights), len(spec.Info.Sizes))
	}
	co.mu.Lock()
	id := fmt.Sprintf("c-%d", co.nextID)
	co.nextID++
	co.mu.Unlock()

	var slots []int
	if spec.FanOut && co.ring.Slots() > 1 {
		slots = make([]int, co.ring.Slots())
		for i := range slots {
			slots[i] = i
		}
	} else {
		slots = []int{co.ring.Lookup(id)}
	}
	if err := co.log.Append(logEntry(id, spec)); err != nil {
		return nil, err
	}
	in := &Instance{
		co: co, id: id, spec: spec,
		fanOut:  len(slots) > 1,
		mixer:   hashpr.Mixer{Seed: spec.Seed},
		slots:   slots,
		handles: make(map[int]*client.Instance, len(slots)),
		journal: make(map[int][][]osp.Element),
		acked:   make(map[int]int, len(slots)),
		failed:  make(map[int][][]osp.Element),
	}
	for _, slot := range slots {
		m := co.memberAt(slot)
		h, err := m.c.Register(ctx, clientSpec(spec))
		if err != nil {
			return nil, &NodeError{Slot: slot, Node: m.cfg.BaseURL, Err: err}
		}
		in.handles[slot] = h
	}
	co.mu.Lock()
	co.insts[id] = in
	co.mu.Unlock()
	return in, nil
}

func logEntry(id string, spec Spec) LogEntry {
	return LogEntry{
		ID: id, Weights: spec.Info.Weights, Sizes: spec.Info.Sizes, Seed: spec.Seed,
		Shards: spec.Engine.Shards, BatchSize: spec.Engine.BatchSize,
		QueueDepth: spec.Engine.QueueDepth, Policy: spec.Engine.Policy,
		FanOut: spec.FanOut, Label: spec.Label,
	}
}

func clientSpec(spec Spec) client.Spec {
	return client.Spec{Info: spec.Info, Seed: spec.Seed, Engine: spec.Engine, Label: spec.Label}
}

func (co *Coordinator) memberAt(slot int) *member {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.nodes[slot]
}

// ID returns the coordinator-level instance identifier.
func (in *Instance) ID() string { return in.id }

// Slots returns the hosting slot indices, ascending: one for a pinned
// instance, all of them for fan-out.
func (in *Instance) Slots() []int { return append([]int(nil), in.slots...) }

// StreamConnElements reports, per hosting slot, the element count each
// striped stream connection to that node has carried
// (client.Instance.StreamConnElements) — the loadgen's view of stripe
// balance across the fleet. Slots whose transport settled on HTTP (or
// that have not ingested yet) are absent from the map.
func (in *Instance) StreamConnElements() map[int][]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[int][]uint64, len(in.handles))
	for slot, h := range in.handles {
		if per := h.StreamConnElements(); per != nil {
			out[slot] = per
		}
	}
	return out
}

// Owner returns the hosting slot that decides el — the fan-out hash for
// a split instance, the pinned slot otherwise. Exported so tests (and
// routing-aware clients) can predict placement.
func (in *Instance) Owner(el osp.Element) int {
	if !in.fanOut {
		return in.slots[0]
	}
	return in.slots[ownerOf(in.mixer, el, len(in.slots))]
}

// Lost returns the number of elements lost to failovers on this
// instance: always 0 with Config.Journal, else the elements the dead
// nodes had acknowledged before dying. The merged drain equals the
// serial oracle over the surviving (= all minus lost) element
// subsequence.
func (in *Instance) Lost() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.lost
}

// share is one node's slice of a scattered batch.
type share struct {
	slot int
	els  []osp.Element
	idx  []int // original batch indices, nil = identity (pinned)
}

// Ingest forwards one batch of elements in arrival order: pinned
// instances ship the whole batch to their node, fan-out instances
// scatter elements to their owning nodes by element hash and the shares
// fly in parallel. fn — optional, may be nil — receives every
// element's admitted parent sets with i the element's index in els
// (callback order follows each node's share; across nodes it is
// unspecified). The admitted slice is reused scratch, valid only during
// the callback.
//
// On a node failure the failed share is RETAINED (not lost, not
// re-scattered — surviving nodes' shares were acknowledged and must not
// be double-ingested) and the error is a *NodeError naming the slot;
// ReplaceNode resends retained shares onto the replacement. Elements
// handed to Ingest are referenced until then — callers must not mutate
// them afterwards.
//
// With a health monitor attached and AutoFailover armed (StartHealth),
// a *NodeError does not surface immediately: Ingest blocks — the
// backpressure a dying node earns — until the automatic failover's
// replay has resent the retained share onto the replacement, then
// returns nil. The rode-through share's verdict callbacks are skipped
// (its verdicts happened during the replay); surviving shares' fired
// normally. Only when no failover rescues the share within the
// monitor's budget does the *NodeError reach the caller.
func (in *Instance) Ingest(ctx context.Context, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	err := in.ingestOnce(ctx, els, fn)
	if err == nil {
		return nil
	}
	var ne *NodeError
	if !errors.As(err, &ne) {
		return err
	}
	m := in.co.healthMonitor()
	if m == nil || !m.cfg.AutoFailover {
		return err
	}
	if in.rideThrough(ctx, m.cfg.failoverBudget()) {
		return nil
	}
	return err
}

// ingestOnce is one forwarding pass; failed shares are retained for the
// failover replay.
func (in *Instance) ingestOnce(ctx context.Context, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	if len(els) == 0 {
		return errors.New("cluster: ingest: empty batch")
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.drained != nil {
		return fmt.Errorf("cluster: ingest: instance %s is already drained", in.id)
	}

	var shares []share
	if !in.fanOut {
		// Pinned: the node's share aliases the caller's batch; copy the
		// slice header before retaining it (journal/failed) so later
		// caller-side reslicing can't corrupt the retained share.
		shares = []share{{slot: in.slots[0], els: els}}
	} else {
		per := make(map[int]*share, len(in.slots))
		for i, el := range els {
			slot := in.Owner(el)
			s := per[slot]
			if s == nil {
				s = &share{slot: slot}
				per[slot] = s
			}
			s.els = append(s.els, el)
			s.idx = append(s.idx, i)
		}
		shares = make([]share, 0, len(per))
		for _, s := range per {
			shares = append(shares, *s)
		}
		sort.Slice(shares, func(a, b int) bool { return shares[a].slot < shares[b].slot })
	}

	errs := make([]error, len(shares))
	var cbmu sync.Mutex // serializes fn across node goroutines
	var wg sync.WaitGroup
	for k := range shares {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s := shares[k]
			h := in.handles[s.slot]
			m := in.co.memberAt(s.slot)
			cb := func(int, []osp.SetID) {}
			if fn != nil {
				cb = func(i int, admitted []osp.SetID) {
					cbmu.Lock()
					if s.idx != nil {
						i = s.idx[i]
					}
					fn(i, admitted)
					cbmu.Unlock()
				}
			}
			start := time.Now()
			err := h.IngestAuto(ctx, s.els, cb)
			in.co.forward.Observe(time.Since(start))
			if err != nil {
				m.errs.Add(1)
				errs[k] = &NodeError{Slot: s.slot, Node: m.cfg.BaseURL, Err: err}
				return
			}
			m.batches.Add(1)
			m.elements.Add(uint64(len(s.els)))
		}(k)
	}
	wg.Wait()

	var firstErr error
	for k, s := range shares {
		retained := s.els
		if s.idx == nil {
			retained = append([]osp.Element(nil), s.els...)
		}
		if errs[k] != nil {
			in.failed[s.slot] = append(in.failed[s.slot], retained)
			if firstErr == nil {
				firstErr = errs[k]
			}
			continue
		}
		in.acked[s.slot] += len(s.els)
		if in.co.journal {
			in.journal[s.slot] = append(in.journal[s.slot], retained)
		}
	}
	return firstErr
}

// Drain closes the instance's stream on every hosting node and merges
// the per-node results exactly like engine.Drain merges shard counts:
// Assigned counters sum (integer counts commute), then completion and
// benefit are recomputed from the summed counts in ascending set order
// — so the merged Result is bit-for-bit equal to a single-node drain
// and to the serial oracle over the same elements. Idempotent.
func (in *Instance) Drain(ctx context.Context) (*osp.Result, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.drained != nil {
		return in.drained, nil
	}
	m := len(in.spec.Info.Weights)
	total := make([]int32, m)
	for _, slot := range in.slots {
		h := in.handles[slot]
		h.Close() //nolint:errcheck // pinned stream teardown; drain is the authority
		res, err := h.Drain(ctx)
		if err != nil {
			nm := in.co.memberAt(slot)
			return nil, &NodeError{Slot: slot, Node: nm.cfg.BaseURL, Err: err}
		}
		if len(res.Assigned) != m {
			nm := in.co.memberAt(slot)
			return nil, &NodeError{Slot: slot, Node: nm.cfg.BaseURL,
				Err: fmt.Errorf("drain returned %d assignment counters, want %d", len(res.Assigned), m)}
		}
		for i, c := range res.Assigned {
			total[i] += c
		}
	}
	res := &osp.Result{Assigned: total}
	for i, w := range in.spec.Info.Weights {
		if int(total[i]) == in.spec.Info.Sizes[i] {
			res.Completed = append(res.Completed, osp.SetID(i))
			res.Benefit += w
		}
	}
	in.drained = res
	// The stream is closed: retained shares have served their purpose.
	in.journal = nil
	in.failed = nil
	return res, nil
}

// ReplaceNode brings a replacement node into the dead node's slot and
// replays it to parity: every instance hosted on the slot is
// re-registered from the registration log's spec (same Info, same seed
// — the policy contract makes the replica's state identical by
// construction), then the retained element shares are resent in order:
// the journaled acked history first when Config.Journal (exact
// recovery), then the unacknowledged in-flight shares (always
// retained). Without the journal the dead node's acked elements are
// gone — ReplaceNode accounts them via Instance.Lost and the cluster
// metrics rather than pretending.
//
// Concurrent Ingest calls on an affected instance serialize with the
// replay on the instance lock: a call that lands before the replay
// fails against the dead node and its share joins the retained set; a
// call after proceeds against the replacement.
func (co *Coordinator) ReplaceNode(ctx context.Context, slot int, replacement Node) error {
	if err := co.ring.validateSlot(slot); err != nil {
		return err
	}
	m, err := dialMember(slot, replacement, co.httpc, co.conns, co.retry)
	if err != nil {
		return err
	}
	co.mu.Lock()
	co.nodes[slot] = m
	affected := make([]*Instance, 0, len(co.insts))
	for _, in := range co.insts {
		for _, s := range in.slots {
			if s == slot {
				affected = append(affected, in)
				break
			}
		}
	}
	co.mu.Unlock()
	sort.Slice(affected, func(i, j int) bool { return affected[i].id < affected[j].id })
	co.failovers.Add(1)
	for _, in := range affected {
		if err := in.rehome(ctx, slot, m); err != nil {
			return err
		}
	}
	return nil
}

// rehome re-registers this instance on the slot's replacement node and
// resends the retained shares.
func (in *Instance) rehome(ctx context.Context, slot int, m *member) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.drained != nil {
		return nil
	}
	if old := in.handles[slot]; old != nil {
		old.Close() //nolint:errcheck // the node behind it is dead
	}
	h, err := m.c.Register(ctx, clientSpec(in.spec))
	if err != nil {
		return &NodeError{Slot: slot, Node: m.cfg.BaseURL, Err: fmt.Errorf("replay register: %w", err)}
	}
	in.handles[slot] = h
	if !in.co.journal {
		in.lost += uint64(in.acked[slot])
		in.co.lost.Add(uint64(in.acked[slot]))
	}
	in.acked[slot] = 0
	resend := make([][]osp.Element, 0, len(in.journal[slot])+len(in.failed[slot]))
	resend = append(resend, in.journal[slot]...)
	resend = append(resend, in.failed[slot]...)
	in.journal[slot] = nil
	in.failed[slot] = nil
	for k, els := range resend {
		if err := h.IngestAuto(ctx, els, nil); err != nil {
			// The replacement failed mid-replay: retain what it has not
			// acknowledged so a further ReplaceNode can still recover.
			in.failed[slot] = append(in.failed[slot], resend[k:]...)
			m.errs.Add(1)
			return &NodeError{Slot: slot, Node: m.cfg.BaseURL, Err: fmt.Errorf("replay ingest: %w", err)}
		}
		in.co.resent.Add(uint64(len(els)))
		m.batches.Add(1)
		m.elements.Add(uint64(len(els)))
		in.acked[slot] += len(els)
		if in.co.journal {
			in.journal[slot] = append(in.journal[slot], els)
		}
	}
	return nil
}

// Close releases every instance's pinned streams and closes the
// registration log. Instances are not drained — Close is teardown, not
// completion.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	insts := make([]*Instance, 0, len(co.insts))
	for _, in := range co.insts {
		insts = append(insts, in)
	}
	co.mu.Unlock()
	var first error
	for _, in := range insts {
		in.mu.Lock()
		for _, h := range in.handles {
			if err := h.Close(); err != nil && first == nil {
				first = err
			}
		}
		in.mu.Unlock()
	}
	if err := co.log.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
