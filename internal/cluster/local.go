package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/osp"
)

// LocalNode is a full admission-service node running in-process on real
// loopback TCP — HTTP API and stream listener both live. It exists so
// cluster tests, the fault-injection suite, and `ospcluster -spawn` can
// stand up an N-node fleet in one process, with a Kill that emulates
// process death deterministically (connections torn down abruptly, no
// graceful drain) — the thing an exec'd subprocess kill does racily.
type LocalNode struct {
	srv      *osp.Server
	hs       *http.Server
	httpLn   net.Listener
	streamLn net.Listener
	cfg      Node

	mu     sync.Mutex
	dead   bool
	httpCh chan error
}

// StartLocalNode boots a node on two fresh loopback ports.
func StartLocalNode(cfg osp.ServerConfig) (*LocalNode, error) {
	srv := osp.NewServer(cfg)
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: local node http listen: %w", err)
	}
	streamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		httpLn.Close()
		return nil, fmt.Errorf("cluster: local node stream listen: %w", err)
	}
	n := &LocalNode{
		srv:      srv,
		hs:       &http.Server{Handler: srv},
		httpLn:   httpLn,
		streamLn: streamLn,
		cfg: Node{
			BaseURL:    "http://" + httpLn.Addr().String(),
			StreamAddr: streamLn.Addr().String(),
		},
		httpCh: make(chan error, 1),
	}
	go func() { n.httpCh <- n.hs.Serve(httpLn) }()
	go srv.ServeStream(streamLn) //nolint:errcheck // ends when the listener closes
	return n, nil
}

// Config returns the node's addresses for Config.Nodes / ReplaceNode.
func (n *LocalNode) Config() Node { return n.cfg }

// Server exposes the underlying admission server (tests reach the pool
// through it).
func (n *LocalNode) Server() *osp.Server { return n.srv }

// Kill emulates the node process dying: both listeners close and every
// established connection — HTTP and stream — is torn down immediately,
// mid-frame if one is in flight. No drain, no goodbye. All engine state
// is gone the way a killed process's memory is gone; the node cannot be
// revived (start a fresh LocalNode and ReplaceNode it into the slot).
func (n *LocalNode) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return
	}
	n.dead = true
	n.hs.Close() //nolint:errcheck // abrupt teardown is the point
	n.streamLn.Close()
	// An already-expired context makes Shutdown skip every grace period:
	// stream connections are force-closed, engines drained in the
	// background where nobody will ever read them.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n.srv.Shutdown(ctx) //nolint:errcheck // dead nodes don't report
	<-n.httpCh
}

// Shutdown is the graceful counterpart for test/CLI cleanup: streams
// quiesce, engines drain, the HTTP server closes.
func (n *LocalNode) Shutdown(ctx context.Context) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return nil
	}
	n.dead = true
	n.streamLn.Close()
	err := n.srv.Shutdown(ctx)
	if herr := n.hs.Shutdown(ctx); herr != nil && !errors.Is(herr, http.ErrServerClosed) && err == nil {
		err = herr
	}
	select {
	case <-n.httpCh:
	case <-time.After(time.Second):
	}
	return err
}
