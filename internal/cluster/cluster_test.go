package cluster_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/osp"
)

// startFleet boots n in-process nodes on loopback TCP and a coordinator
// over them.
func startFleet(t *testing.T, n int, cfg cluster.Config) (*cluster.Coordinator, []*cluster.LocalNode) {
	t.Helper()
	nodes := make([]*cluster.LocalNode, n)
	cfg.Nodes = make([]cluster.Node, n)
	for i := range nodes {
		ln, err := cluster.StartLocalNode(osp.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = ln
		cfg.Nodes[i] = ln.Config()
		t.Cleanup(func() { ln.Shutdown(context.Background()) }) //nolint:errcheck
	}
	co, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() }) //nolint:errcheck
	return co, nodes
}

// workload builds a deterministic test instance.
func workload(t *testing.T, m, n, load int, seed int64) *osp.Instance {
	t.Helper()
	inst, err := osp.RandomInstance(osp.UniformConfig{M: m, N: n, Load: load, Capacity: 2},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// ingestAll streams an instance through a cluster handle in fixed-size
// batches, counting admitted memberships via the verdict callback.
func ingestAll(t *testing.T, in *cluster.Instance, inst *osp.Instance, batch int) (admitted uint64) {
	t.Helper()
	ctx := context.Background()
	for off := 0; off < len(inst.Elements); off += batch {
		els := inst.Elements[off:min(off+batch, len(inst.Elements))]
		seen := 0
		err := in.Ingest(ctx, els, func(i int, adm []osp.SetID) {
			if i < 0 || i >= len(els) {
				t.Errorf("callback index %d out of batch [0,%d)", i, len(els))
			}
			seen++
			admitted += uint64(len(adm))
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != len(els) {
			t.Fatalf("callback ran %d times for %d elements", seen, len(els))
		}
	}
	return admitted
}

func sumAssigned(res *osp.Result) (total uint64) {
	for _, c := range res.Assigned {
		total += uint64(c)
	}
	return total
}

// TestClusterDeterminism is the cross-node conformance anchor of
// DESIGN.md §15: every registered policy × {1, 2, 4} nodes × {1, 4}
// shards per node, with the instance fanned out across nodes by element
// hash, drains bit-for-bit equal to the serial policy oracle and to the
// single-node engine. Placement cannot change a verdict — this test is
// the pin.
func TestClusterDeterminism(t *testing.T) {
	ctx := context.Background()
	const seed = 97
	inst := workload(t, 48, 2600, 4, 11)
	for _, policy := range osp.PolicyNames() {
		// One oracle + one single-node engine result per policy.
		alg, err := osp.NewPolicyAlgorithm(policy, seed)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := osp.Run(inst, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4} {
			engineRes, err := osp.RunEngine(inst, seed, osp.EngineConfig{Shards: shards, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			if !engineRes.Equal(serial) {
				t.Fatalf("%s: single-node engine (%d shards) differs from serial oracle", policy, shards)
			}
			for _, nodes := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/nodes=%d/shards=%d", policy, nodes, shards), func(t *testing.T) {
					co, _ := startFleet(t, nodes, cluster.Config{})
					in, err := co.Register(ctx, cluster.Spec{
						Info: osp.InfoOf(inst), Seed: seed, FanOut: true,
						Engine: osp.EngineConfig{Shards: shards, Policy: policy},
					})
					if err != nil {
						t.Fatal(err)
					}
					if want := min(nodes, len(in.Slots())); len(in.Slots()) != nodes {
						t.Fatalf("fan-out instance hosted on %d slots, want %d", want, nodes)
					}
					admitted := ingestAll(t, in, inst, 173)
					res, err := in.Drain(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Equal(serial) {
						t.Errorf("merged drain differs from serial oracle")
					}
					if !res.Equal(engineRes) {
						t.Errorf("merged drain differs from single-node engine")
					}
					if got := sumAssigned(res); got != admitted {
						t.Errorf("drain counts %d assignments, verdict callbacks admitted %d", got, admitted)
					}
					if in.Lost() != 0 {
						t.Errorf("Lost() = %d on a run with no failover", in.Lost())
					}
				})
			}
		}
	}
}

// TestClusterPinnedPlacement covers the ring arm: many pinned (non
// fan-out) instances spread across a 4-node fleet by consistent hashing
// — more than one slot used, and every instance's drain still equals
// its serial oracle regardless of where the ring put it.
func TestClusterPinnedPlacement(t *testing.T) {
	ctx := context.Background()
	co, _ := startFleet(t, 4, cluster.Config{})
	slotsUsed := map[int]bool{}
	for k := 0; k < 8; k++ {
		seed := uint64(100 + k)
		inst := workload(t, 20, 500, 3, int64(k))
		in, err := co.Register(ctx, cluster.Spec{Info: osp.InfoOf(inst), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Slots()) != 1 {
			t.Fatalf("pinned instance hosted on %d slots", len(in.Slots()))
		}
		slotsUsed[in.Slots()[0]] = true
		ingestAll(t, in, inst, 111)
		res, err := in.Drain(ctx)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(serial) {
			t.Fatalf("instance %s drained result differs from serial oracle", in.ID())
		}
	}
	if len(slotsUsed) < 2 {
		t.Fatalf("8 pinned instances all landed on %d slot(s) — ring not spreading", len(slotsUsed))
	}
}

// TestRingDeterminism pins the placement function itself: the ring is a
// pure function of (slots, vnodes), so two coordinators — or a restarted
// one — agree on every placement; and slot identity is positional, so a
// replacement inherits its predecessor's keys exactly.
func TestRingDeterminism(t *testing.T) {
	a := cluster.NewRing(5, 0)
	b := cluster.NewRing(5, 0)
	used := map[int]int{}
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("c-%d", k)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("rings disagree on %q", key)
		}
		used[a.Lookup(key)]++
	}
	if len(used) != 5 {
		t.Fatalf("200 keys over 5 slots used only %d slots: %v", len(used), used)
	}
}

// TestClusterOwnerStable pins element fan-out ownership: a pure function
// of (seed, element), identical across coordinator restarts, so a
// replacement node receives exactly the shares its dead predecessor
// owned.
func TestClusterOwnerStable(t *testing.T) {
	ctx := context.Background()
	inst := workload(t, 20, 400, 3, 7)
	co1, _ := startFleet(t, 3, cluster.Config{})
	co2, _ := startFleet(t, 3, cluster.Config{})
	in1, err := co1.Register(ctx, cluster.Spec{Info: osp.InfoOf(inst), Seed: 5, FanOut: true})
	if err != nil {
		t.Fatal(err)
	}
	in2, err := co2.Register(ctx, cluster.Spec{Info: osp.InfoOf(inst), Seed: 5, FanOut: true})
	if err != nil {
		t.Fatal(err)
	}
	owners := map[int]int{}
	for _, el := range inst.Elements {
		if in1.Owner(el) != in2.Owner(el) {
			t.Fatal("element ownership differs between identical coordinators")
		}
		owners[in1.Owner(el)]++
	}
	if len(owners) != 3 {
		t.Fatalf("%d elements over 3 nodes used only %d: %v", len(inst.Elements), len(owners), owners)
	}
}

// TestClusterMetrics exercises the Prometheus exposition: fleet gauges,
// per-node traffic counters with slot/node labels, and the forward
// latency histogram with a well-formed +Inf bucket.
func TestClusterMetrics(t *testing.T) {
	ctx := context.Background()
	co, _ := startFleet(t, 2, cluster.Config{})
	inst := workload(t, 20, 400, 3, 13)
	in, err := co.Register(ctx, cluster.Spec{Info: osp.InfoOf(inst), Seed: 3, FanOut: true})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, in, inst, 100)
	if _, err := in.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	co.WriteMetrics(&b)
	text := b.String()
	for _, want := range []string{
		"osp_cluster_nodes 2",
		"osp_cluster_instances 1",
		"osp_cluster_registrations_total 1",
		`osp_cluster_node_info{slot="0"`,
		`osp_cluster_node_batches_total{slot="1"`,
		`osp_cluster_node_elements_total{slot="0"`,
		"osp_cluster_failovers_total 0",
		"osp_cluster_lost_elements_total 0",
		`osp_cluster_forward_duration_seconds_bucket{le="+Inf"}`,
		"osp_cluster_forward_duration_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
