package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/osp"
)

// The fault-injection suite: kill a node mid-stream (pinned verdict
// streams are live when the node dies), assert the coordinator surfaces
// a *NodeError and retains the failed share, replay the registration
// log onto a replacement via ReplaceNode, and pin the recovery
// semantics — journal on: merged drain bit-for-bit equal to an
// uninterrupted run; journal off: equal to the oracle over the
// surviving element subsequence, with the dead node's acked elements
// explicitly accounted by Instance.Lost. Runs under -race in CI.

// killAndReplace kills the node at slot, asserts the next ingest fails
// with a NodeError naming it, starts a replacement and replays onto it.
// Returns the failed batch so callers know what was retained in flight.
func killAndReplace(t *testing.T, co *cluster.Coordinator, nodes []*cluster.LocalNode,
	slot int, in *cluster.Instance, failBatch []osp.Element) {
	t.Helper()
	ctx := context.Background()
	nodes[slot].Kill()
	err := in.Ingest(ctx, failBatch, nil)
	var ne *cluster.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("ingest against killed node = %v, want *NodeError", err)
	}
	if ne.Slot != slot {
		t.Fatalf("NodeError names slot %d, killed %d", ne.Slot, slot)
	}
	repl, err := cluster.StartLocalNode(osp.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repl.Shutdown(context.Background()) }) //nolint:errcheck
	if err := co.ReplaceNode(ctx, slot, repl.Config()); err != nil {
		t.Fatalf("ReplaceNode: %v", err)
	}
}

// TestFailoverJournalExact: with the journal on, killing a node
// mid-stream and replaying onto a replacement is EXACT — the merged
// drain is bit-for-bit equal to an uninterrupted run (the serial
// oracle over all elements), nothing lost, nothing double-counted.
func TestFailoverJournalExact(t *testing.T) {
	for _, fanOut := range []bool{true, false} {
		name := "fanout"
		if !fanOut {
			name = "pinned"
		}
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			const seed = 43
			inst := workload(t, 40, 2000, 4, 17)
			co, nodes := startFleet(t, 3, cluster.Config{Journal: true})
			in, err := co.Register(ctx, cluster.Spec{
				Info: osp.InfoOf(inst), Seed: seed, FanOut: fanOut,
				Engine: osp.EngineConfig{Shards: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			victim := in.Slots()[0] // a slot that certainly hosts the instance

			const batch = 150
			half := len(inst.Elements) / 2 / batch * batch
			for off := 0; off < half; off += batch {
				if err := in.Ingest(ctx, inst.Elements[off:off+batch], nil); err != nil {
					t.Fatal(err)
				}
			}
			killAndReplace(t, co, nodes, victim, in, inst.Elements[half:half+batch])
			for off := half + batch; off < len(inst.Elements); off += batch {
				if err := in.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))], nil); err != nil {
					t.Fatal(err)
				}
			}
			res, err := in.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(serial) {
				t.Fatal("journal-on failover drain differs from uninterrupted serial oracle")
			}
			if in.Lost() != 0 {
				t.Fatalf("Lost() = %d with the journal on, want 0", in.Lost())
			}
		})
	}
}

// TestFailoverMultiConnStream: the fault-injection suite over STRIPED
// streams — every node's pinned stream runs N TCP connections
// (Config.StreamConns), a kill mid-stream tears all stripes down
// abruptly, and with the journal on the replay onto a replacement is
// still exact. Pins that multi-connection striping preserves the
// per-node element order the oracle equality depends on, including
// across a connection kill.
func TestFailoverMultiConnStream(t *testing.T) {
	for _, conns := range []int{2, 4} {
		t.Run(fmt.Sprintf("conns=%d", conns), func(t *testing.T) {
			ctx := context.Background()
			const seed = 59
			inst := workload(t, 40, 2000, 4, 23)
			co, nodes := startFleet(t, 3, cluster.Config{Journal: true, StreamConns: conns})
			in, err := co.Register(ctx, cluster.Spec{
				Info: osp.InfoOf(inst), Seed: seed, FanOut: true,
				Engine: osp.EngineConfig{Shards: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			victim := in.Slots()[0]

			// Ragged batch size so stripes stay unaligned with batch
			// boundaries. Fan-out interleaves callback indices across
			// node shares, so the check here is exactly-once coverage;
			// strict submit-order is the per-stream contract, pinned by
			// the client suite (TestStreamMultiConnOrderingMatchesHTTP).
			const batch = 137
			half := len(inst.Elements) / 2 / batch * batch
			for off := 0; off < half; off += batch {
				els := inst.Elements[off : off+batch]
				seen := make([]bool, len(els))
				err := in.Ingest(ctx, els, func(i int, _ []osp.SetID) {
					if i < 0 || i >= len(els) || seen[i] {
						t.Errorf("verdict callback for element %d out of range or repeated", i)
						return
					}
					seen[i] = true
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, ok := range seen {
					if !ok {
						t.Fatalf("element %d got no verdict callback", off+i)
					}
				}
			}
			killAndReplace(t, co, nodes, victim, in, inst.Elements[half:half+batch])
			for off := half + batch; off < len(inst.Elements); off += batch {
				if err := in.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))], nil); err != nil {
					t.Fatal(err)
				}
			}
			res, err := in.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(serial) {
				t.Fatal("multi-conn failover drain differs from uninterrupted serial oracle")
			}
			if in.Lost() != 0 {
				t.Fatalf("Lost() = %d with the journal on, want 0", in.Lost())
			}
		})
	}
}

// TestFailoverNoJournalAccounted: without the journal, the dead node's
// ACKED elements are gone and say so — Instance.Lost counts exactly
// them — while the unacked in-flight share is retained and resent, so
// the merged drain equals the serial oracle over the surviving element
// subsequence. "Modulo explicitly-accounted in-flight batches" made
// precise.
func TestFailoverNoJournalAccounted(t *testing.T) {
	ctx := context.Background()
	const seed = 51
	inst := workload(t, 40, 2000, 4, 19)
	co, nodes := startFleet(t, 3, cluster.Config{})
	in, err := co.Register(ctx, cluster.Spec{
		Info: osp.InfoOf(inst), Seed: seed, FanOut: true,
		Engine: osp.EngineConfig{Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	const victim = 1

	const batch = 150
	half := len(inst.Elements) / 2 / batch * batch
	for off := 0; off < half; off += batch {
		if err := in.Ingest(ctx, inst.Elements[off:off+batch], nil); err != nil {
			t.Fatal(err)
		}
	}
	killAndReplace(t, co, nodes, victim, in, inst.Elements[half:half+batch])
	for off := half + batch; off < len(inst.Elements); off += batch {
		if err := in.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))], nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := in.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The surviving subsequence: everything except elements the dead
	// node had ACKED before the kill (its share of the first `half`).
	// The in-flight batch at the kill was never acked — retained and
	// resent, so it survives. Decisions are pure per element, so the
	// oracle over the filtered sequence is the ground truth.
	surviving := &osp.Instance{Weights: inst.Weights, Sizes: inst.Sizes}
	lost := uint64(0)
	for i, el := range inst.Elements {
		if i < half && in.Owner(el) == victim {
			lost++
			continue
		}
		surviving.Elements = append(surviving.Elements, el)
	}
	if lost == 0 {
		t.Fatal("test is vacuous: the dead node owned no acked elements")
	}
	if in.Lost() != lost {
		t.Fatalf("Lost() = %d, want %d (the dead node's acked share)", in.Lost(), lost)
	}
	serial, err := osp.Run(surviving, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(serial) {
		t.Fatal("journal-off failover drain differs from oracle over surviving elements")
	}
}

// TestFailoverConcurrentIngest races live traffic against the kill: one
// goroutine streams batches while the main goroutine kills the victim
// node. Every batch either succeeds or fails with a NodeError (retained
// share); after ReplaceNode and the remaining traffic, the journal-on
// drain still equals the uninterrupted oracle exactly. Primarily a
// -race exercise of the coordinator's locking.
func TestFailoverConcurrentIngest(t *testing.T) {
	ctx := context.Background()
	const seed = 77
	inst := workload(t, 40, 2400, 4, 23)
	co, nodes := startFleet(t, 3, cluster.Config{Journal: true})
	in, err := co.Register(ctx, cluster.Spec{Info: osp.InfoOf(inst), Seed: seed, FanOut: true})
	if err != nil {
		t.Fatal(err)
	}
	const victim, batch = 2, 120

	half := len(inst.Elements) / 2 / batch * batch
	killAt := half / 2
	killed := make(chan struct{})
	done := make(chan int) // first offset that failed, or -1
	go func() {
		firstFail := -1
		for off := 0; off < half; off += batch {
			if off == killAt {
				nodes[victim].Kill()
				close(killed)
			}
			err := in.Ingest(ctx, inst.Elements[off:off+batch], nil)
			var ne *cluster.NodeError
			switch {
			case err == nil:
			case errors.As(err, &ne) && ne.Slot == victim:
				if firstFail < 0 {
					firstFail = off
				}
			default:
				t.Errorf("ingest at %d: %v", off, err)
			}
		}
		done <- firstFail
	}()
	<-killed
	firstFail := <-done
	repl, err := cluster.StartLocalNode(osp.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repl.Shutdown(context.Background()) }) //nolint:errcheck
	if err := co.ReplaceNode(ctx, victim, repl.Config()); err != nil {
		t.Fatal(err)
	}
	for off := half; off < len(inst.Elements); off += batch {
		if err := in.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))], nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := in.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(serial) {
		t.Fatalf("concurrent-kill journal-on drain differs from oracle (first failed ingest at offset %d)", firstFail)
	}
	if in.Lost() != 0 {
		t.Fatalf("Lost() = %d with the journal on", in.Lost())
	}
}

// TestFailoverMetricsAndLog: a failover leaves its trace — failovers
// and resent counters move, the registration log still holds the one
// registration that was replayed, and a file-backed log survives
// reopening with identical entries.
func TestFailoverMetricsAndLog(t *testing.T) {
	ctx := context.Background()
	const seed = 29
	inst := workload(t, 30, 900, 3, 31)
	path := filepath.Join(t.TempDir(), "registrations.jsonl")
	lg, err := cluster.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	co, nodes := startFleet(t, 2, cluster.Config{Journal: true, Log: lg})
	in, err := co.Register(ctx, cluster.Spec{
		Info: osp.InfoOf(inst), Seed: seed, FanOut: true, Label: "failover-demo",
	})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 90
	third := len(inst.Elements) / 3 / batch * batch
	for off := 0; off < third; off += batch {
		if err := in.Ingest(ctx, inst.Elements[off:off+batch], nil); err != nil {
			t.Fatal(err)
		}
	}
	killAndReplace(t, co, nodes, 0, in, inst.Elements[third:third+batch])
	for off := third + batch; off < len(inst.Elements); off += batch {
		if err := in.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))], nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := in.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(serial) {
		t.Fatal("drain differs from oracle after logged failover")
	}

	var b strings.Builder
	co.WriteMetrics(&b)
	text := b.String()
	for _, want := range []string{
		"osp_cluster_failovers_total 1",
		"osp_cluster_lost_elements_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(text, "osp_cluster_resent_elements_total") ||
		strings.Contains(text, "osp_cluster_resent_elements_total 0\n") {
		t.Error("resent counter missing or zero after a journaled failover")
	}

	// Reopen the file-backed log: the registration survives, with the
	// full spec a fresh coordinator would need to re-adopt the fleet.
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, err := cluster.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	entries := lg2.Entries()
	if len(entries) != 1 {
		t.Fatalf("reopened log has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.ID != in.ID() || e.Seed != seed || !e.FanOut || e.Label != "failover-demo" ||
		len(e.Weights) != len(inst.Weights) || len(e.Sizes) != len(inst.Sizes) {
		t.Fatalf("reopened log entry mismatch: %+v", e)
	}
}
