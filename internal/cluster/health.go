package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Health-driven automatic failover: a Monitor probes every slot's node
// — GET /healthz plus, when the node advertises one, a TCP liveness
// check of its stream listener — and walks each slot through a
// three-state machine:
//
//	healthy --probe failure--> suspect --FailThreshold consecutive
//	failures--> dead --ReplaceNode(spare) succeeded--> healthy
//
// Suspect and dead slots are re-probed under jittered exponential
// backoff (a struggling node is not hammered back to death); any
// successful probe snaps the slot straight back to healthy. When a slot
// goes dead and AutoFailover is armed, the monitor takes the next spare
// from the pool and invokes the coordinator's existing ReplaceNode
// replay against it — registration log first, then the retained element
// shares — with no operator in the loop. Everything the manual path
// guarantees carries over: with the journal on the merged drain stays
// bit-for-bit equal to the serial oracle; without it the dead node's
// acknowledged elements are counted in Instance.Lost, never silently
// dropped.

// NodeState is one slot's health, encoded so the Prometheus gauge reads
// naturally: 2 healthy, 1 suspect, 0 dead.
type NodeState int32

const (
	// NodeDead means FailThreshold consecutive probes failed; the slot
	// is eligible for automatic failover.
	NodeDead NodeState = 0
	// NodeSuspect means at least one probe failed but the slot has not
	// reached the death threshold.
	NodeSuspect NodeState = 1
	// NodeHealthy means the last probe succeeded.
	NodeHealthy NodeState = 2
)

// String implements fmt.Stringer for events and logs.
func (s NodeState) String() string {
	switch s {
	case NodeHealthy:
		return "healthy"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// HealthEvent reports one slot transition (and failover outcomes) to
// the OnEvent hook.
type HealthEvent struct {
	// Slot is the affected fleet slot.
	Slot int
	// Node is the slot's occupant at event time (the replacement, for a
	// completed failover).
	Node string
	// From and To are the transition's endpoints.
	From, To NodeState
	// Err carries the probe or failover error, nil on recovery.
	Err error
	// Failover marks events emitted by the automatic ReplaceNode (To is
	// the slot's state after the attempt).
	Failover bool
}

// HealthConfig configures a Monitor.
type HealthConfig struct {
	// Interval is the probe period for healthy nodes. 0 means 1s.
	Interval time.Duration
	// Timeout bounds each probe. 0 means half the interval.
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that declares a
	// node dead. 0 means 3.
	FailThreshold int
	// MaxBackoff caps the jittered exponential re-probe backoff for
	// suspect and dead nodes. 0 means 8× the interval.
	MaxBackoff time.Duration
	// Spares is the replacement pool, consumed front to back by
	// automatic failovers.
	Spares []Node
	// AutoFailover arms the automatic ReplaceNode on death. Off, the
	// monitor only observes (states, metrics, events).
	AutoFailover bool
	// FailoverBudget bounds one automatic ReplaceNode replay, and is
	// also how long a riding-through Ingest waits for its share to be
	// rehomed. 0 means 30s.
	FailoverBudget time.Duration
	// OnEvent, when set, receives every state transition and failover
	// outcome. Called from monitor goroutines; keep it fast.
	OnEvent func(HealthEvent)
}

func (c *HealthConfig) interval() time.Duration {
	if c.Interval <= 0 {
		return time.Second
	}
	return c.Interval
}

func (c *HealthConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return c.interval() / 2
	}
	return c.Timeout
}

func (c *HealthConfig) failThreshold() int {
	if c.FailThreshold <= 0 {
		return 3
	}
	return c.FailThreshold
}

func (c *HealthConfig) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 8 * c.interval()
	}
	return c.MaxBackoff
}

func (c *HealthConfig) failoverBudget() time.Duration {
	if c.FailoverBudget <= 0 {
		return 30 * time.Second
	}
	return c.FailoverBudget
}

// slotHealth is one slot's monitor state (guarded by Monitor.mu).
type slotHealth struct {
	state     NodeState
	fails     int           // consecutive probe failures
	backoff   time.Duration // current re-probe backoff (suspect/dead)
	nextProbe time.Time
	replacing bool // an automatic failover is in flight
}

// Monitor probes the fleet and drives automatic failover. Create with
// Coordinator.StartHealth; stop with Stop.
type Monitor struct {
	co  *Coordinator
	cfg HealthConfig

	mu     sync.Mutex
	slots  []slotHealth
	spares []Node

	autoFailovers  atomic.Uint64 // automatic ReplaceNode attempts that succeeded
	failedAttempts atomic.Uint64 // automatic ReplaceNode attempts that errored
	probeFails     atomic.Uint64 // probes that failed

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartHealth attaches a health monitor to the coordinator and begins
// probing. One monitor per coordinator: a second call stops the first.
func (co *Coordinator) StartHealth(cfg HealthConfig) *Monitor {
	m := &Monitor{
		co:     co,
		cfg:    cfg,
		slots:  make([]slotHealth, co.ring.Slots()),
		spares: append([]Node(nil), cfg.Spares...),
		stop:   make(chan struct{}),
	}
	for i := range m.slots {
		m.slots[i].state = NodeHealthy // innocent until probed
	}
	co.mu.Lock()
	prev := co.health
	co.health = m
	co.mu.Unlock()
	if prev != nil {
		prev.Stop()
	}
	m.wg.Add(1)
	go m.loop()
	return m
}

// healthMonitor returns the attached monitor, nil when none.
func (co *Coordinator) healthMonitor() *Monitor {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.health
}

// Stop ends probing. In-flight failovers run to completion.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// States returns every slot's current health, slot-indexed.
func (m *Monitor) States() []NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeState, len(m.slots))
	for i := range m.slots {
		out[i] = m.slots[i].state
	}
	return out
}

// SpareCount returns the number of unconsumed spares.
func (m *Monitor) SpareCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.spares)
}

// AutoFailovers returns the number of automatic ReplaceNode replays
// that completed.
func (m *Monitor) AutoFailovers() uint64 { return m.autoFailovers.Load() }

// loop is the probe scheduler: each tick, every slot whose backoff
// clock has expired is probed concurrently.
func (m *Monitor) loop() {
	defer m.wg.Done()
	tick := m.cfg.interval() / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			var due []int
			m.mu.Lock()
			for i := range m.slots {
				if !m.slots[i].nextProbe.After(now) && !m.slots[i].replacing {
					due = append(due, i)
					// Claim the slot until this probe round settles it.
					m.slots[i].nextProbe = now.Add(m.cfg.maxBackoff())
				}
			}
			m.mu.Unlock()
			var wg sync.WaitGroup
			for _, slot := range due {
				wg.Add(1)
				go func(slot int) {
					defer wg.Done()
					m.probe(slot)
				}(slot)
			}
			wg.Wait()
		}
	}
}

// probe checks one slot and advances its state machine.
func (m *Monitor) probe(slot int) {
	mem := m.co.memberAt(slot)
	err := probeNode(mem, m.cfg.timeout())
	if err != nil {
		m.probeFails.Add(1)
	}

	m.mu.Lock()
	sh := &m.slots[slot]
	from := sh.state
	if err == nil {
		sh.state = NodeHealthy
		sh.fails = 0
		sh.backoff = 0
		sh.nextProbe = time.Now().Add(m.cfg.interval())
	} else {
		sh.fails++
		if sh.fails >= m.cfg.failThreshold() {
			sh.state = NodeDead
		} else {
			sh.state = NodeSuspect
		}
		// Jittered exponential backoff on re-probe: [b/2, b], doubling.
		if sh.backoff == 0 {
			sh.backoff = m.cfg.interval()
		} else if sh.backoff *= 2; sh.backoff > m.cfg.maxBackoff() {
			sh.backoff = m.cfg.maxBackoff()
		}
		wait := sh.backoff/2 + time.Duration(rand.Int63n(int64(sh.backoff/2)+1))
		sh.nextProbe = time.Now().Add(wait)
	}
	to := sh.state
	startFailover := to == NodeDead && m.cfg.AutoFailover && !sh.replacing && len(m.spares) > 0
	var spare Node
	if startFailover {
		spare = m.spares[0]
		m.spares = m.spares[1:]
		sh.replacing = true
	}
	m.mu.Unlock()

	if from != to {
		m.emit(HealthEvent{Slot: slot, Node: mem.cfg.BaseURL, From: from, To: to, Err: err})
	}
	if startFailover {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.failover(slot, spare)
		}()
	}
}

// probeNode is one health check: GET /healthz, plus a TCP dial of the
// stream listener when the node advertises one — a node whose HTTP
// plane answers but whose stream plane is gone is not healthy.
func probeNode(mem *member, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := mem.c.Health(ctx); err != nil {
		return err
	}
	if addr := mem.cfg.StreamAddr; addr != "" {
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return fmt.Errorf("stream liveness %s: %w", addr, err)
		}
		nc.Close() //nolint:errcheck // liveness only
	}
	return nil
}

// failover runs one automatic ReplaceNode replay against a spare.
func (m *Monitor) failover(slot int, spare Node) {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.failoverBudget())
	defer cancel()
	err := m.co.ReplaceNode(ctx, slot, spare)

	m.mu.Lock()
	sh := &m.slots[slot]
	sh.replacing = false
	from := sh.state
	if err == nil {
		m.autoFailovers.Add(1)
		sh.state = NodeHealthy
		sh.fails = 0
		sh.backoff = 0
		sh.nextProbe = time.Now().Add(m.cfg.interval())
	} else {
		m.failedAttempts.Add(1)
		// The slot now holds the spare with a partial replay; probe it
		// soon — retained shares survive for a further ReplaceNode.
		sh.state = NodeSuspect
		sh.fails = 0
		sh.nextProbe = time.Now().Add(m.cfg.interval())
	}
	to := sh.state
	m.mu.Unlock()
	m.emit(HealthEvent{Slot: slot, Node: spare.BaseURL, From: from, To: to, Err: err, Failover: true})
}

// emit delivers one event to the hook, if any.
func (m *Monitor) emit(ev HealthEvent) {
	if m.cfg.OnEvent != nil {
		m.cfg.OnEvent(ev)
	}
}

// rideThrough blocks until the retained shares of a failed ingest have
// been resent by an automatic failover's replay, or the budget runs
// out. It reports whether the batch landed.
func (in *Instance) rideThrough(ctx context.Context, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	for {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(10 * time.Millisecond):
		}
		in.mu.Lock()
		landed := in.drained == nil
		for _, slot := range in.slots {
			if len(in.failed[slot]) > 0 {
				landed = false
				break
			}
		}
		in.mu.Unlock()
		if landed {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
	}
}
