package cluster

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Cluster-level Prometheus exposition, same hand-rolled text format as
// internal/serve's: the coordinator's counters are already the
// collected state, so rendering is a pure read. Per-node series are
// labeled {slot,node} — slot is the stable identity, node is the
// current occupant's address, so a failover shows up as the slot's
// series restarting under a new node label instead of a silent counter
// reset on an unchanged series.

// WriteMetrics renders the coordinator's Prometheus text exposition.
func (co *Coordinator) WriteMetrics(w io.Writer) {
	co.mu.Lock()
	members := append([]*member(nil), co.nodes...)
	instances := len(co.insts)
	co.mu.Unlock()

	fmt.Fprintf(w, "# HELP osp_cluster_nodes Nodes in the fleet (slots).\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_nodes gauge\n")
	fmt.Fprintf(w, "osp_cluster_nodes %d\n", len(members))
	fmt.Fprintf(w, "# HELP osp_cluster_instances Cluster-level instances registered.\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_instances gauge\n")
	fmt.Fprintf(w, "osp_cluster_instances %d\n", instances)
	fmt.Fprintf(w, "# HELP osp_cluster_registrations_total Registration log entries appended.\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_registrations_total counter\n")
	fmt.Fprintf(w, "osp_cluster_registrations_total %d\n", co.log.Len())

	fmt.Fprintf(w, "# HELP osp_cluster_node_info Current occupant of each slot (value is always 1; the labels carry the information).\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_node_info gauge\n")
	for _, m := range members {
		fmt.Fprintf(w, "osp_cluster_node_info{slot=\"%d\",node=%q,stream=%q} 1\n",
			m.slot, escapeLabel(m.cfg.BaseURL), escapeLabel(m.cfg.StreamAddr))
	}
	fmt.Fprintf(w, "# HELP osp_cluster_node_batches_total Element shares forwarded to each node.\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_node_batches_total counter\n")
	for _, m := range members {
		fmt.Fprintf(w, "osp_cluster_node_batches_total{%s} %d\n", nodeLabels(m), m.batches.Load())
	}
	fmt.Fprintf(w, "# HELP osp_cluster_node_elements_total Elements forwarded to each node.\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_node_elements_total counter\n")
	for _, m := range members {
		fmt.Fprintf(w, "osp_cluster_node_elements_total{%s} %d\n", nodeLabels(m), m.elements.Load())
	}
	fmt.Fprintf(w, "# HELP osp_cluster_node_errors_total Failed forwards per node (each leaves a retained share for failover).\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_node_errors_total counter\n")
	for _, m := range members {
		fmt.Fprintf(w, "osp_cluster_node_errors_total{%s} %d\n", nodeLabels(m), m.errs.Load())
	}

	if h := co.healthMonitor(); h != nil {
		states := h.States()
		fmt.Fprintf(w, "# HELP osp_cluster_node_health Health-monitor state per slot: 2 healthy, 1 suspect, 0 dead.\n")
		fmt.Fprintf(w, "# TYPE osp_cluster_node_health gauge\n")
		for _, m := range members {
			if m.slot < len(states) {
				fmt.Fprintf(w, "osp_cluster_node_health{%s} %d\n", nodeLabels(m), int32(states[m.slot]))
			}
		}
		fmt.Fprintf(w, "# HELP osp_cluster_spares Replacement nodes still available to automatic failover.\n")
		fmt.Fprintf(w, "# TYPE osp_cluster_spares gauge\n")
		fmt.Fprintf(w, "osp_cluster_spares %d\n", h.SpareCount())
		fmt.Fprintf(w, "# HELP osp_cluster_auto_failovers_total Automatic ReplaceNode replays completed by the health monitor.\n")
		fmt.Fprintf(w, "# TYPE osp_cluster_auto_failovers_total counter\n")
		fmt.Fprintf(w, "osp_cluster_auto_failovers_total %d\n", h.autoFailovers.Load())
		fmt.Fprintf(w, "# HELP osp_cluster_failed_failovers_total Automatic ReplaceNode replays that errored (slot left suspect, shares retained).\n")
		fmt.Fprintf(w, "# TYPE osp_cluster_failed_failovers_total counter\n")
		fmt.Fprintf(w, "osp_cluster_failed_failovers_total %d\n", h.failedAttempts.Load())
		fmt.Fprintf(w, "# HELP osp_cluster_probe_failures_total Health probes that failed.\n")
		fmt.Fprintf(w, "# TYPE osp_cluster_probe_failures_total counter\n")
		fmt.Fprintf(w, "osp_cluster_probe_failures_total %d\n", h.probeFails.Load())
	}

	fmt.Fprintf(w, "# HELP osp_cluster_failovers_total Node replacements replayed (ReplaceNode).\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_failovers_total counter\n")
	fmt.Fprintf(w, "osp_cluster_failovers_total %d\n", co.failovers.Load())
	fmt.Fprintf(w, "# HELP osp_cluster_resent_elements_total Elements resent to replacement nodes during failover replay.\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_resent_elements_total counter\n")
	fmt.Fprintf(w, "osp_cluster_resent_elements_total %d\n", co.resent.Load())
	fmt.Fprintf(w, "# HELP osp_cluster_lost_elements_total Acknowledged elements lost to failovers (always 0 with the journal on).\n")
	fmt.Fprintf(w, "# TYPE osp_cluster_lost_elements_total counter\n")
	fmt.Fprintf(w, "osp_cluster_lost_elements_total %d\n", co.lost.Load())

	const name = "osp_cluster_forward_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Per-share forward round-trip latency (coordinator to node and back, verdicts decoded).\n", name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	snap := co.forward.Snapshot()
	var cum uint64
	for i := 0; i < obs.HistogramBuckets; i++ {
		cum += snap.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(obs.BucketBound(i)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(snap.SumSecs))
	fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
}

// nodeLabels renders a member's identifying label pairs.
func nodeLabels(m *member) string {
	var b strings.Builder
	b.WriteString(`slot="`)
	b.WriteString(strconv.Itoa(m.slot))
	b.WriteString(`",node="`)
	b.WriteString(escapeLabel(m.cfg.BaseURL))
	b.WriteString(`"`)
	return b.String()
}

// formatFloat renders a float the shortest way that parses back exactly
// (shared contract with internal/serve's exposition).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
