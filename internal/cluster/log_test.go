package cluster_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func logLines(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	return strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
}

// A crash mid-append leaves a partial final line. Replay must drop it,
// count it, and keep every complete entry before it.
func TestOpenLogToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	lg, err := cluster.OpenLog(path)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := lg.Append(cluster.LogEntry{ID: "c-" + string(rune('0'+i)), Weights: []float64{1}, Sizes: []int{1}, Seed: uint64(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: chop the file in the middle of the
	// last JSON line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatalf("truncate log: %v", err)
	}

	lg2, err := cluster.OpenLog(path)
	if err != nil {
		t.Fatalf("OpenLog after truncation: %v", err)
	}
	defer lg2.Close()
	if got := lg2.Len(); got != 2 {
		t.Fatalf("Len after truncated tail = %d, want 2", got)
	}
	if got := lg2.TruncatedTail(); got != 1 {
		t.Fatalf("TruncatedTail = %d, want 1", got)
	}
	for i, e := range lg2.Entries() {
		if want := "c-" + string(rune('0'+i)); e.ID != want {
			t.Fatalf("entry %d ID = %q, want %q", i, e.ID, want)
		}
	}

	// The next Append must overwrite the partial tail, leaving a clean
	// log: re-opening sees 3 entries and no truncation.
	if err := lg2.Append(cluster.LogEntry{ID: "c-9", Weights: []float64{1}, Sizes: []int{1}, Seed: 9}); err != nil {
		t.Fatalf("Append after truncated open: %v", err)
	}
	if err := lg2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lg3, err := cluster.OpenLog(path)
	if err != nil {
		t.Fatalf("OpenLog after repair: %v", err)
	}
	defer lg3.Close()
	if got := lg3.Len(); got != 3 {
		t.Fatalf("Len after repair = %d, want 3", got)
	}
	if got := lg3.TruncatedTail(); got != 0 {
		t.Fatalf("TruncatedTail after repair = %d, want 0", got)
	}
	if lines := logLines(t, path); len(lines) != 3 {
		t.Fatalf("log has %d lines after repair, want 3: %q", len(lines), lines)
	}
}

// Corruption in the MIDDLE of the log is not a crashed append — it must
// still fail the replay loudly.
func TestOpenLogRejectsInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	body := `{"id":"c-0","weights":[1],"sizes":[1],"seed":0}` + "\n" +
		`{"id":"c-1","weights":[1],"sizes":` + "\n" + // malformed, but not final
		`{"id":"c-2","weights":[1],"sizes":[1],"seed":2}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatalf("write log: %v", err)
	}
	if _, err := cluster.OpenLog(path); err == nil {
		t.Fatal("OpenLog accepted interior corruption")
	}
}

// LogFsync is a durability knob: verify the option threads through and
// appends still land correctly.
func TestOpenLogFsyncAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	lg, err := cluster.OpenLog(path, cluster.LogFsync())
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := lg.Append(cluster.LogEntry{ID: "c-0", Weights: []float64{2, 1}, Sizes: []int{1, 2}, Seed: 7, Policy: "greedy"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// No Close: entries must already be on disk (the file is written per
	// append, fsync'd, and never buffered in the process).
	lg2, err := cluster.OpenLog(path)
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	defer lg2.Close()
	defer lg.Close()
	if got := lg2.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if e := lg2.Entries()[0]; e.ID != "c-0" || e.Policy != "greedy" || e.Seed != 7 {
		t.Fatalf("entry mismatch: %+v", e)
	}
}
