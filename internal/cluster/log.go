package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// The registration log is the failover substrate: an append-only record
// of every instance registration, in order. Because policy state is
// pure in (Info, seed), replaying the log's entries for one slot onto a
// fresh node reconstructs — bit-for-bit — the policy state the dead
// node held, with no snapshot, no state transfer, and no quiescing of
// the other nodes. The coordinator always keeps the log in memory;
// opening it on a file additionally makes it durable, so a restarted
// coordinator process can re-adopt a running fleet.

// LogEntry is one registration, with everything a replacement node
// needs to reach the identical policy state: the up-front Info, the
// shared seed, and the per-node engine sizing.
type LogEntry struct {
	// ID is the coordinator-level instance identifier.
	ID string `json:"id"`
	// Weights and Sizes are the instance's up-front information.
	Weights []float64 `json:"weights"`
	Sizes   []int     `json:"sizes"`
	// Seed is the shared policy seed — the whole "state transfer".
	Seed uint64 `json:"seed"`
	// Shards, BatchSize, QueueDepth size each node's engine; Policy
	// names the admission policy ("" = server default).
	Shards     int    `json:"shards,omitempty"`
	BatchSize  int    `json:"batch_size,omitempty"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	Policy     string `json:"policy,omitempty"`
	// FanOut records whether the instance is split across all nodes by
	// element hash (true) or pinned to one slot by the ring (false).
	FanOut bool `json:"fan_out,omitempty"`
	// Label tags the instance's metrics series.
	Label string `json:"label,omitempty"`
}

// Log is the append-only registration log: always in memory, optionally
// mirrored to a JSONL file. Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	entries []LogEntry
	w       *bufio.Writer // nil when memory-only
	f       *os.File
}

// NewLog returns a memory-only registration log.
func NewLog() *Log { return &Log{} }

// OpenLog opens (creating or appending) a file-backed registration log
// and loads any entries already in it, so a restarted coordinator
// resumes with the registrations of its predecessor.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open registration log: %w", err)
	}
	entries, err := readEntries(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: seek registration log: %w", err)
	}
	return &Log{entries: entries, f: f, w: bufio.NewWriter(f)}, nil
}

// readEntries parses a JSONL registration log.
func readEntries(r io.Reader) ([]LogEntry, error) {
	var entries []LogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e LogEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("cluster: registration log line %d: %w", line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: read registration log: %w", err)
	}
	return entries, nil
}

// Append records one registration, flushing through to the file when
// the log is file-backed (a registration is rare and must survive a
// coordinator crash, so durability beats batching here).
func (l *Log) Append(e LogEntry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	if l.w == nil {
		return nil
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cluster: encode registration log entry: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := l.w.Write(raw); err != nil {
		return fmt.Errorf("cluster: append registration log: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flush registration log: %w", err)
	}
	return nil
}

// Entries returns a copy of the log in append order.
func (l *Log) Entries() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len returns the number of registrations logged.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Close flushes and closes the backing file, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.w.Flush()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.w = nil, nil
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return fmt.Errorf("cluster: close registration log: %w", err)
	}
	return nil
}
