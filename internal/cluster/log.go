package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// The registration log is the failover substrate: an append-only record
// of every instance registration, in order. Because policy state is
// pure in (Info, seed), replaying the log's entries for one slot onto a
// fresh node reconstructs — bit-for-bit — the policy state the dead
// node held, with no snapshot, no state transfer, and no quiescing of
// the other nodes. The coordinator always keeps the log in memory;
// opening it on a file additionally makes it durable, so a restarted
// coordinator process can re-adopt a running fleet.

// LogEntry is one registration, with everything a replacement node
// needs to reach the identical policy state: the up-front Info, the
// shared seed, and the per-node engine sizing.
type LogEntry struct {
	// ID is the coordinator-level instance identifier.
	ID string `json:"id"`
	// Weights and Sizes are the instance's up-front information.
	Weights []float64 `json:"weights"`
	Sizes   []int     `json:"sizes"`
	// Seed is the shared policy seed — the whole "state transfer".
	Seed uint64 `json:"seed"`
	// Shards, BatchSize, QueueDepth size each node's engine; Policy
	// names the admission policy ("" = server default).
	Shards     int    `json:"shards,omitempty"`
	BatchSize  int    `json:"batch_size,omitempty"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	Policy     string `json:"policy,omitempty"`
	// FanOut records whether the instance is split across all nodes by
	// element hash (true) or pinned to one slot by the ring (false).
	FanOut bool `json:"fan_out,omitempty"`
	// Label tags the instance's metrics series.
	Label string `json:"label,omitempty"`
}

// Log is the append-only registration log: always in memory, optionally
// mirrored to a JSONL file. Safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	entries   []LogEntry
	f         *os.File // nil when memory-only
	fsync     bool
	truncated int // malformed tail lines dropped at open
}

// LogOption customizes OpenLog.
type LogOption func(*Log)

// LogFsync makes every Append fsync the backing file before returning,
// so an acknowledged registration survives not just a process crash but
// a machine crash. Registrations are rare (one per instance, never on
// the element hot path), so the per-append fsync cost is irrelevant
// next to the durability it buys.
func LogFsync() LogOption { return func(l *Log) { l.fsync = true } }

// NewLog returns a memory-only registration log.
func NewLog() *Log { return &Log{} }

// OpenLog opens (creating or appending) a file-backed registration log
// and loads any entries already in it, so a restarted coordinator
// resumes with the registrations of its predecessor.
//
// A malformed or truncated FINAL line — the signature of a crash mid-
// append — is tolerated: the tail line is dropped, counted
// (TruncatedTail) and overwritten by the next Append, instead of
// failing the whole replay the way corruption in the middle of the log
// (which no crash produces) still does.
func OpenLog(path string, opts ...LogOption) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open registration log: %w", err)
	}
	entries, keep, truncated, err := readEntries(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Position the write cursor after the last good line: a dropped
	// partial tail is overwritten by the next Append rather than left to
	// corrupt the line after it.
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: seek registration log: %w", err)
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: truncate registration log tail: %w", err)
	}
	l := &Log{entries: entries, f: f, truncated: truncated}
	for _, opt := range opts {
		opt(l)
	}
	return l, nil
}

// readEntries parses a JSONL registration log, returning the entries,
// the byte offset just past the last well-formed line, and the number
// of malformed tail lines dropped (0 or 1 — anything malformed before
// the final line is still a hard error).
func readEntries(r io.Reader) (entries []LogEntry, keep int64, truncated int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var (
		line    int
		badLine int // 1-based index of the first malformed line seen
		badErr  error
	)
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if badErr != nil {
			// A malformed line with more lines after it is real corruption,
			// not a crashed append.
			return nil, 0, 0, fmt.Errorf("cluster: registration log line %d: %w", badLine, badErr)
		}
		if len(raw) == 0 {
			keep += 1 // the newline itself
			continue
		}
		var e LogEntry
		if jerr := json.Unmarshal(raw, &e); jerr != nil {
			badLine, badErr = line, jerr
			continue
		}
		entries = append(entries, e)
		keep += int64(len(raw)) + 1
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, 0, fmt.Errorf("cluster: read registration log: %w", serr)
	}
	if badErr != nil {
		truncated = 1
	}
	return entries, keep, truncated, nil
}

// Append records one registration. File-backed logs write the entry as
// ONE write syscall (entry + newline in a single buffer — the kernel
// appends it atomically with respect to other writers of the same fd),
// so a crash mid-append leaves at most one partial tail line, which the
// next OpenLog drops and counts instead of failing. With LogFsync the
// write is additionally flushed to stable storage before Append
// returns.
func (l *Log) Append(e LogEntry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		raw, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("cluster: encode registration log entry: %w", err)
		}
		raw = append(raw, '\n')
		if _, err := l.f.Write(raw); err != nil {
			return fmt.Errorf("cluster: append registration log: %w", err)
		}
		if l.fsync {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("cluster: fsync registration log: %w", err)
			}
		}
	}
	l.entries = append(l.entries, e)
	return nil
}

// Entries returns a copy of the log in append order.
func (l *Log) Entries() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len returns the number of registrations logged.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// TruncatedTail reports how many malformed tail lines OpenLog dropped —
// 0 on a clean log, 1 after a crash mid-append. Exposed so replay
// tooling (and the osp_cluster_log_truncated_total metric) can surface
// that a crash was survived rather than silently absorbing it.
func (l *Log) TruncatedTail() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Close flushes and closes the backing file, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return fmt.Errorf("cluster: close registration log: %w", err)
	}
	return nil
}
