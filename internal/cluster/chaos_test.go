package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultproxy"
	"repro/osp"
	"repro/osp/client"
)

// The chaos suite: every fault class internal/faultproxy can inject —
// plus outright process death — driven against a live fleet with the
// health monitor armed, under -race in CI. The assertions are the
// repo's two recovery oracles: with the element journal on, the merged
// drain is bit-for-bit equal to the serial oracle over ALL elements;
// without it, equal to the oracle over the surviving subsequence with
// the dead node's acknowledged share counted in Instance.Lost. No test
// here calls ReplaceNode — that is the point.

// chaosHealth is the fast-probing monitor config the suite arms.
func chaosHealth(spare cluster.Node) cluster.HealthConfig {
	return cluster.HealthConfig{
		Interval:       25 * time.Millisecond,
		Timeout:        80 * time.Millisecond,
		FailThreshold:  2,
		Spares:         []cluster.Node{spare},
		AutoFailover:   true,
		FailoverBudget: 20 * time.Second,
	}
}

// chaosRetry is the deadline-budgeted client retry the coordinator
// threads through its node clients: short enough that a dead node
// surfaces as a retained share quickly, long enough to ride out blips.
func chaosRetry() *client.RetryPolicy {
	return &client.RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: 10 * time.Millisecond,
		PerAttempt:  150 * time.Millisecond,
		Budget:      500 * time.Millisecond,
	}
}

// startSpare boots a LocalNode used as the failover spare.
func startSpare(t *testing.T) *cluster.LocalNode {
	t.Helper()
	spare, err := cluster.StartLocalNode(osp.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { spare.Shutdown(context.Background()) }) //nolint:errcheck
	return spare
}

// TestChaosKillAutoFailoverZeroOperator is the tentpole acceptance pin:
// a node dies mid-load (LocalNode.Kill — the in-process kill -9) with
// auto-failover armed and a spare configured, the producer keeps
// calling Ingest and nothing else, and the drain completes. Journal on:
// bit-for-bit the uninterrupted serial oracle. Journal off: the oracle
// over the surviving subsequence, with Lost naming exactly the dead
// node's acknowledged share.
func TestChaosKillAutoFailoverZeroOperator(t *testing.T) {
	for _, journal := range []bool{true, false} {
		name := "journal"
		if !journal {
			name = "no-journal"
		}
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			const seed = 61
			inst := workload(t, 40, 1800, 4, 37)
			co, nodes := startFleet(t, 2, cluster.Config{Journal: journal})
			spare := startSpare(t)
			mon := co.StartHealth(chaosHealth(spare.Config()))
			defer mon.Stop()

			in, err := co.Register(ctx, cluster.Spec{
				Info: osp.InfoOf(inst), Seed: seed, FanOut: true,
				Engine: osp.EngineConfig{Shards: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			const victim, batch = 1, 120
			half := len(inst.Elements) / 2 / batch * batch
			for off := 0; off < half; off += batch {
				if err := in.Ingest(ctx, inst.Elements[off:off+batch], nil); err != nil {
					t.Fatal(err)
				}
			}
			nodes[victim].Kill()
			// Zero operator commands from here: the producer just keeps
			// ingesting; failed shares ride through the automatic failover.
			for off := half; off < len(inst.Elements); off += batch {
				if err := in.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))], nil); err != nil {
					t.Fatalf("ingest at %d did not ride through the failover: %v", off, err)
				}
			}
			res, err := in.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if mon.AutoFailovers() != 1 {
				t.Fatalf("auto failovers = %d, want 1", mon.AutoFailovers())
			}
			if mon.SpareCount() != 0 {
				t.Fatalf("spare pool = %d, want 0 (consumed)", mon.SpareCount())
			}

			if journal {
				serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Equal(serial) {
					t.Fatal("journal-on auto-failover drain differs from uninterrupted serial oracle")
				}
				if in.Lost() != 0 {
					t.Fatalf("Lost() = %d with the journal on, want 0", in.Lost())
				}
				return
			}
			// Journal off: the dead node's acked elements (its share of
			// the first half) are lost and accounted; everything else —
			// including the retained in-flight share the replay resent —
			// survives.
			surviving := &osp.Instance{Weights: inst.Weights, Sizes: inst.Sizes}
			lost := uint64(0)
			for i, el := range inst.Elements {
				if i < half && in.Owner(el) == victim {
					lost++
					continue
				}
				surviving.Elements = append(surviving.Elements, el)
			}
			if lost == 0 {
				t.Fatal("test is vacuous: the dead node owned no acked elements")
			}
			if in.Lost() != lost {
				t.Fatalf("Lost() = %d, want %d (the dead node's acked share)", in.Lost(), lost)
			}
			serial, err := osp.Run(surviving, osp.NewHashRandPr(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(serial) {
				t.Fatal("journal-off auto-failover drain differs from oracle over surviving elements")
			}
		})
	}
}

// TestChaosFaultClasses drives each network fault class through a
// faultproxy interposed between the coordinator and one node. The
// faulted node goes dead to the health monitor, the automatic failover
// replays onto the spare, in-flight batches ride through, and with the
// journal on the drain stays exact — for every way the network can lie.
func TestChaosFaultClasses(t *testing.T) {
	classes := []struct {
		name  string
		fault faultproxy.Fault
	}{
		{"blackhole", faultproxy.Fault{Mode: faultproxy.Blackhole}},
		{"reset", faultproxy.Fault{Mode: faultproxy.Reset, AfterBytes: 0}},
		{"truncate-mid-frame", faultproxy.Fault{Mode: faultproxy.Truncate, AfterBytes: 64}},
		{"drop", faultproxy.Fault{Mode: faultproxy.Drop}},
	}
	for _, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			const seed = 67
			inst := workload(t, 35, 1500, 4, 41)

			direct, err := cluster.StartLocalNode(osp.ServerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { direct.Shutdown(context.Background()) }) //nolint:errcheck
			victim, err := cluster.StartLocalNode(osp.ServerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { victim.Shutdown(context.Background()) }) //nolint:errcheck
			proxy, err := faultproxy.New(strings.TrimPrefix(victim.Config().BaseURL, "http://"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { proxy.Close() })
			spare := startSpare(t)

			// Slot 1 is reached only through the proxy (HTTP-only so every
			// byte crosses the fault path).
			co, err := cluster.New(cluster.Config{
				Nodes: []cluster.Node{
					direct.Config(),
					{BaseURL: "http://" + proxy.Addr()},
				},
				Journal: true,
				Retry:   chaosRetry(),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { co.Close() }) //nolint:errcheck
			mon := co.StartHealth(chaosHealth(spare.Config()))
			defer mon.Stop()

			in, err := co.Register(ctx, cluster.Spec{
				Info: osp.InfoOf(inst), Seed: seed, FanOut: true,
				Engine: osp.EngineConfig{Shards: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			const batch = 120
			third := len(inst.Elements) / 3 / batch * batch
			for off := 0; off < third; off += batch {
				if err := in.Ingest(ctx, inst.Elements[off:off+batch], nil); err != nil {
					t.Fatal(err)
				}
			}
			// Inject the fault; cut live keep-alive connections so the
			// fault is felt immediately, not on the next fresh dial.
			proxy.Set(tc.fault)
			proxy.CutConns()
			for off := third; off < len(inst.Elements); off += batch {
				if err := in.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))], nil); err != nil {
					t.Fatalf("ingest at %d did not ride through the %s fault: %v", off, tc.name, err)
				}
			}
			res, err := in.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(serial) {
				t.Fatalf("%s: journal-on drain differs from uninterrupted serial oracle", tc.name)
			}
			if in.Lost() != 0 {
				t.Fatalf("Lost() = %d with the journal on, want 0", in.Lost())
			}
			if mon.AutoFailovers() != 1 {
				t.Fatalf("auto failovers = %d, want exactly 1", mon.AutoFailovers())
			}
		})
	}
}

// TestChaosDelayIsNotDeath pins the suspect arm: added latency slows
// traffic but probes still succeed, so the monitor must NOT burn the
// spare — slow is not dead.
func TestChaosDelayIsNotDeath(t *testing.T) {
	ctx := context.Background()
	const seed = 71
	inst := workload(t, 25, 600, 3, 43)

	node, err := cluster.StartLocalNode(osp.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Shutdown(context.Background()) }) //nolint:errcheck
	proxy, err := faultproxy.New(strings.TrimPrefix(node.Config().BaseURL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	spare := startSpare(t)

	co, err := cluster.New(cluster.Config{
		Nodes:   []cluster.Node{{BaseURL: "http://" + proxy.Addr()}},
		Journal: true,
		Retry:   chaosRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() }) //nolint:errcheck
	cfg := chaosHealth(spare.Config())
	cfg.Timeout = 120 * time.Millisecond // latency fits inside the probe budget
	mon := co.StartHealth(cfg)
	defer mon.Stop()

	in, err := co.Register(ctx, cluster.Spec{Info: osp.InfoOf(inst), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	proxy.Set(faultproxy.Fault{Mode: faultproxy.Delay, Latency: 10 * time.Millisecond})
	const batch = 150
	for off := 0; off < len(inst.Elements); off += batch {
		if err := in.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))], nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := in.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(serial) {
		t.Fatal("delayed drain differs from oracle")
	}
	if mon.AutoFailovers() != 0 {
		t.Fatalf("auto failovers = %d under mere latency, want 0", mon.AutoFailovers())
	}
	if mon.SpareCount() != 1 {
		t.Fatalf("spare pool = %d, want 1 (untouched)", mon.SpareCount())
	}
}

// TestChaosHealthMetricsAndEvents pins the observable surface: the
// metrics exposition carries the per-slot health gauge and failover
// counters, and the event hook saw the healthy→suspect→dead→healthy
// walk.
func TestChaosHealthMetricsAndEvents(t *testing.T) {
	ctx := context.Background()
	inst := workload(t, 20, 400, 3, 47)
	co, nodes := startFleet(t, 2, cluster.Config{Journal: true})
	spare := startSpare(t)

	events := make(chan cluster.HealthEvent, 64)
	cfg := chaosHealth(spare.Config())
	cfg.OnEvent = func(ev cluster.HealthEvent) {
		select {
		case events <- ev:
		default:
		}
	}
	mon := co.StartHealth(cfg)
	defer mon.Stop()

	in, err := co.Register(ctx, cluster.Spec{Info: osp.InfoOf(inst), Seed: 5, FanOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Ingest(ctx, inst.Elements[:100], nil); err != nil {
		t.Fatal(err)
	}
	const victim = 0
	nodes[victim].Kill()
	if err := in.Ingest(ctx, inst.Elements[100:200], nil); err != nil {
		t.Fatalf("ingest did not ride through: %v", err)
	}

	// The walk must have passed through suspect and dead on the way to
	// the failover's healthy.
	deadline := time.After(10 * time.Second)
	sawSuspect, sawDead, sawFailover := false, false, false
	for !sawFailover {
		select {
		case ev := <-events:
			if ev.Slot != victim {
				continue
			}
			switch {
			case ev.To == cluster.NodeSuspect:
				sawSuspect = true
			case ev.To == cluster.NodeDead:
				sawDead = true
			case ev.Failover && ev.Err == nil && ev.To == cluster.NodeHealthy:
				sawFailover = true
			}
		case <-deadline:
			t.Fatalf("no successful failover event (suspect=%v dead=%v)", sawSuspect, sawDead)
		}
	}
	if !sawSuspect || !sawDead {
		t.Errorf("state walk skipped a stage: suspect=%v dead=%v", sawSuspect, sawDead)
	}

	var b strings.Builder
	co.WriteMetrics(&b)
	text := b.String()
	for _, want := range []string{
		"osp_cluster_node_health{slot=\"0\"",
		"osp_cluster_node_health{slot=\"1\"",
		"osp_cluster_auto_failovers_total 1",
		"osp_cluster_spares 0",
		"osp_cluster_probe_failures_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
