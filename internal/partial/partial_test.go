package partial

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

func triangle(t *testing.T) *setsystem.Instance {
	t.Helper()
	var b setsystem.Builder
	a := b.AddSet(1)
	bb := b.AddSet(2)
	c := b.AddSet(3)
	b.AddElement(a, bb)
	b.AddElement(a, c)
	b.AddElement(bb, c)
	return b.MustBuild()
}

func TestBenefitSlackZeroMatchesStandard(t *testing.T) {
	inst := triangle(t)
	res, err := core.Run(inst, &core.GreedyMaxWeight{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Benefit(inst, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Benefit {
		t.Errorf("Benefit(D=0) = %v, want %v", got, res.Benefit)
	}
}

func TestBenefitSlackRecoversLosses(t *testing.T) {
	inst := triangle(t)
	// greedyMaxWeight: u0→B, u1→C, u2→C. C complete; B missed 1; A missed 2.
	res, err := core.Run(inst, &core.GreedyMaxWeight{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := Benefit(inst, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != 3+2+1 { // with D=1, A missed 2 → A excluded? A: assigned 0 of 2 → missed 2 > 1.
		// A has 2 elements, both lost → not recovered at D=1.
		if b1 != 5 {
			t.Errorf("Benefit(D=1) = %v, want 5", b1)
		}
	}
	b2, err := Benefit(inst, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != 6 {
		t.Errorf("Benefit(D=2) = %v, want 6 (every set within slack)", b2)
	}
	sets, err := CompletedUnder(inst, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || sets[0] != 1 || sets[1] != 2 {
		t.Errorf("CompletedUnder(D=1) = %v, want [1 2]", sets)
	}
}

func TestBenefitMonotoneInSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst, err := workload.Uniform(workload.UniformConfig{M: 15, N: 40, Load: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(inst, &core.RandPr{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for d := 0; d <= 5; d++ {
		b, err := Benefit(inst, res, d)
		if err != nil {
			t.Fatal(err)
		}
		if b < prev {
			t.Fatalf("Benefit not monotone: D=%d gives %v < %v", d, b, prev)
		}
		prev = b
	}
}

func TestBenefitRejectsNegativeSlack(t *testing.T) {
	inst := triangle(t)
	res, _ := core.Run(inst, &core.GreedyMaxWeight{}, nil)
	if _, err := Benefit(inst, res, -1); !errors.Is(err, ErrBadSlack) {
		t.Errorf("err = %v, want ErrBadSlack", err)
	}
	if _, err := CompletedUnder(inst, res, -1); !errors.Is(err, ErrBadSlack) {
		t.Errorf("err = %v, want ErrBadSlack", err)
	}
}

func TestSlackAwareWrapping(t *testing.T) {
	inst := triangle(t)
	alg := &SlackAware{Inner: &core.GreedyMaxWeight{}, Slack: 1}
	res, err := core.Run(inst, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Benefit(inst, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Errorf("slack-aware benefit = %v", b)
	}
	if alg.Name() != "slack1(greedyMaxWeight)" {
		t.Errorf("Name = %q", alg.Name())
	}
}

func TestSlackAwareErrors(t *testing.T) {
	inst := triangle(t)
	if _, err := core.Run(inst, &SlackAware{Slack: 1}, nil); err == nil {
		t.Error("nil inner should error")
	}
	if _, err := core.Run(inst, &SlackAware{Inner: &core.GreedyMaxWeight{}, Slack: -1}, nil); err == nil {
		t.Error("negative slack should error")
	}
}

// Slack-aware randPr should earn at least as much relaxed benefit as
// plain randPr under the same priorities, on average.
func TestSlackAwareHelpsOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst, err := workload.Uniform(workload.UniformConfig{M: 20, N: 60, Load: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const slack = 1
	var plain, aware float64
	for seed := int64(0); seed < 60; seed++ {
		res, err := core.Run(inst, &core.RandPr{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		bp, _ := Benefit(inst, res, slack)
		plain += bp

		res, err = core.Run(inst, &SlackAware{Inner: &core.RandPr{}, Slack: slack},
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		ba, _ := Benefit(inst, res, slack)
		aware += ba
	}
	if aware < plain {
		t.Errorf("slack-aware total %v < plain %v", aware, plain)
	}
}

func TestExactRelaxedSlackZeroMatchesStandardOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		inst, err := workload.Uniform(workload.UniformConfig{M: 8, N: 14, Load: 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		relaxed, err := ExactRelaxed(inst, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		std, err := offline.Exact(inst)
		if err != nil {
			t.Fatal(err)
		}
		if relaxed.Weight != std.Weight {
			t.Fatalf("trial %d: relaxed D=0 OPT %v != standard OPT %v", trial, relaxed.Weight, std.Weight)
		}
	}
}

func TestExactRelaxedMonotoneAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst, err := workload.Uniform(workload.UniformConfig{M: 8, N: 14, Load: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := inst.TotalWeight()
	prev := -1.0
	for d := 0; d <= 3; d++ {
		sol, err := ExactRelaxed(inst, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Weight < prev {
			t.Fatalf("relaxed OPT not monotone in D: %v then %v", prev, sol.Weight)
		}
		if sol.Weight > total+1e-9 {
			t.Fatalf("relaxed OPT %v exceeds total weight %v", sol.Weight, total)
		}
		prev = sol.Weight
	}
}

func TestExactRelaxedTriangleWithSlack(t *testing.T) {
	// Triangle: standard OPT = 3 (heaviest set). With D=1 every set can
	// afford to lose one contested element: all three sets survive by
	// each taking one of its two elements... element capacities are 1, so
	// each element serves one set; 3 elements serve 3 sets, each set gets
	// 1 of 2 elements → misses 1 ≤ D. OPT(D=1) = 6.
	inst := triangle(t)
	sol, err := ExactRelaxed(inst, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 6 {
		t.Errorf("relaxed OPT(D=1) = %v, want 6", sol.Weight)
	}
}

func TestExactRelaxedRejectsBadSlack(t *testing.T) {
	inst := triangle(t)
	if _, err := ExactRelaxed(inst, -1, 0); !errors.Is(err, ErrBadSlack) {
		t.Errorf("err = %v, want ErrBadSlack", err)
	}
}

func TestExactRelaxedNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst, err := workload.Uniform(workload.UniformConfig{M: 12, N: 20, Load: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactRelaxed(inst, 1, 2); err == nil {
		t.Error("tiny node budget should be exhausted")
	}
}

func TestLoserFlowFeasibleDirect(t *testing.T) {
	// Two sets sharing two elements, D=1: each set can lose one shared
	// element, so both survive.
	var b setsystem.Builder
	s0 := b.AddSet(1)
	s1 := b.AddSet(1)
	b.AddElement(s0, s1)
	b.AddElement(s0, s1)
	b.AddElement(s0)
	b.AddElement(s1)
	inst := b.MustBuild()
	members := inst.MemberMatrix()
	chosen := []setsystem.SetID{0, 1}
	if !loserFlowFeasible(inst, members, chosen, 1) {
		t.Error("D=1 should make both sets feasible")
	}
	if loserFlowFeasible(inst, members, chosen, 0) {
		t.Error("D=0 should be infeasible (two shared contested elements)")
	}
	// D=1 with three shared elements: each set must lose ≥... 3 excess
	// across two sets with budget 1 each → infeasible.
	var b2 setsystem.Builder
	t0 := b2.AddSet(1)
	t1 := b2.AddSet(1)
	b2.AddElement(t0, t1)
	b2.AddElement(t0, t1)
	b2.AddElement(t0, t1)
	inst2 := b2.MustBuild()
	if loserFlowFeasible(inst2, inst2.MemberMatrix(), []setsystem.SetID{0, 1}, 1) {
		t.Error("3 contested elements with D=1 must be infeasible")
	}
}

func TestMaxFlowSmall(t *testing.T) {
	// Classic 4-node diamond: source 0, sink 3; capacities force flow 2.
	g := newFlowGraph(4)
	g.addEdge(0, 1, 1)
	g.addEdge(0, 2, 1)
	g.addEdge(1, 3, 1)
	g.addEdge(2, 3, 1)
	if got := g.maxFlow(0, 3); got != 2 {
		t.Errorf("maxFlow = %d, want 2", got)
	}
	// Bottleneck in the middle.
	g2 := newFlowGraph(4)
	g2.addEdge(0, 1, 5)
	g2.addEdge(1, 2, 2)
	g2.addEdge(2, 3, 5)
	if got := g2.maxFlow(0, 3); got != 2 {
		t.Errorf("maxFlow = %d, want 2", got)
	}
}
