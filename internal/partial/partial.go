// Package partial implements the third open problem of the paper's
// Section 5: "What about the case where the set can be gained even if a
// few elements are missing?" — partial-credit OSP, where a set pays its
// weight if at most D of its elements were lost (D = 0 recovers standard
// OSP).
//
// The package provides the relaxed objective (evaluating any run of the
// standard engine under slack D), a slack-aware algorithm wrapper (a set
// with d ≤ D losses is still worth fighting for), and an exact offline
// solver for the relaxed problem via branch-and-bound with a max-flow
// feasibility oracle. In the video reading, D > 0 models forward error
// correction: a frame protected by D repair packets survives up to D
// losses.
package partial

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/setsystem"
)

// ErrBadSlack is returned for negative slack values.
var ErrBadSlack = errors.New("partial: slack D must be >= 0")

// Benefit evaluates a completed run under slack D: a set earns its weight
// when it missed at most D of its elements. With D = 0 this equals
// res.Benefit.
func Benefit(inst *setsystem.Instance, res *core.Result, slack int) (float64, error) {
	if slack < 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadSlack, slack)
	}
	var total float64
	for i, sz := range inst.Sizes {
		if sz-int(res.Assigned[i]) <= slack {
			total += inst.Weights[i]
		}
	}
	return total, nil
}

// CompletedUnder returns the sets that survive under slack D, ascending.
func CompletedUnder(inst *setsystem.Instance, res *core.Result, slack int) ([]setsystem.SetID, error) {
	if slack < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSlack, slack)
	}
	var out []setsystem.SetID
	for i, sz := range inst.Sizes {
		if sz-int(res.Assigned[i]) <= slack {
			out = append(out, setsystem.SetID(i))
		}
	}
	return out, nil
}

// SlackAware wraps an inner algorithm so that its notion of "still
// completable" tolerates up to D losses: parents that are already beyond
// salvage (more than D misses) are filtered out of the element view
// before delegating, so the inner algorithm never wastes capacity on dead
// sets — the D-tolerant analogue of the ActiveOnly refinement.
type SlackAware struct {
	// Inner is the wrapped algorithm (must not be nil).
	Inner core.Algorithm
	// Slack is D, the number of tolerated losses.
	Slack int

	buf []setsystem.SetID
}

var _ core.Algorithm = (*SlackAware)(nil)

// Name implements core.Algorithm.
func (a *SlackAware) Name() string {
	if a.Inner == nil {
		return fmt.Sprintf("slack%d(<nil>)", a.Slack)
	}
	return fmt.Sprintf("slack%d(%s)", a.Slack, a.Inner.Name())
}

// Reset implements core.Algorithm.
func (a *SlackAware) Reset(info core.Info, rng *rand.Rand) error {
	if a.Inner == nil {
		return errors.New("partial: SlackAware needs an inner algorithm")
	}
	if a.Slack < 0 {
		return fmt.Errorf("%w: %d", ErrBadSlack, a.Slack)
	}
	return a.Inner.Reset(info, rng)
}

// Choose implements core.Algorithm.
func (a *SlackAware) Choose(ev core.ElementView) []setsystem.SetID {
	a.buf = a.buf[:0]
	for _, s := range ev.Members {
		lost := ev.State.Arrived(s) - ev.State.Assigned(s)
		if lost <= a.Slack {
			a.buf = append(a.buf, s)
		}
	}
	inner := ev
	inner.Members = a.buf
	return a.Inner.Choose(inner)
}

// Solution mirrors offline.Solution for the relaxed problem.
type Solution struct {
	Sets   []setsystem.SetID
	Weight float64
}

// ExactRelaxed computes the offline optimum of partial-credit OSP by
// branch-and-bound over set choices: selecting a set commits to serving
// all but at most D of its elements. Feasibility of a candidate selection
// is decided exactly by a max-flow argument: every element u that is
// demanded by more than b(u) chosen sets must push its excess to "loser"
// slots, and each chosen set can absorb at most D losses. The selection
// is feasible iff the excess flow saturates.
func ExactRelaxed(inst *setsystem.Instance, slack int, maxNodes int64) (*Solution, error) {
	if slack < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSlack, slack)
	}
	if maxNodes <= 0 {
		maxNodes = 5_000_000
	}
	m := inst.NumSets()
	members := inst.MemberMatrix()

	order := make([]setsystem.SetID, m)
	for i := range order {
		order[i] = setsystem.SetID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := inst.Weights[order[a]], inst.Weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	suffix := make([]float64, m+1)
	for i := m - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + inst.Weights[order[i]]
	}

	var best float64
	var bestSets []setsystem.SetID
	var nodes int64
	var overBudget bool
	var chosen []setsystem.SetID

	feasible := func() bool {
		return loserFlowFeasible(inst, members, chosen, slack)
	}

	var dfs func(idx int, curWeight float64)
	dfs = func(idx int, curWeight float64) {
		if overBudget {
			return
		}
		nodes++
		if nodes > maxNodes {
			overBudget = true
			return
		}
		if curWeight > best {
			best = curWeight
			bestSets = append(bestSets[:0], chosen...)
		}
		if idx == m || curWeight+suffix[idx] <= best {
			return
		}
		s := order[idx]
		if inst.Weights[s] > 0 {
			chosen = append(chosen, s)
			if feasible() {
				dfs(idx+1, curWeight+inst.Weights[s])
			}
			chosen = chosen[:len(chosen)-1]
		}
		dfs(idx+1, curWeight)
	}
	dfs(0, 0)
	if overBudget {
		return nil, fmt.Errorf("partial: node budget exhausted after %d nodes", nodes)
	}
	sort.Slice(bestSets, func(i, j int) bool { return bestSets[i] < bestSets[j] })
	return &Solution{Sets: bestSets, Weight: best}, nil
}

// loserFlowFeasible decides whether the chosen sets can all survive with
// slack D. Flow network: source → element e with capacity
// (demand_e − b(e)) for oversubscribed elements; element e → chosen set
// index ci with capacity 1 (a set loses a given element at most once,
// and only if it demands it); set ci → sink with capacity D. Feasible iff
// max flow equals the total excess.
func loserFlowFeasible(inst *setsystem.Instance, members [][]int, chosen []setsystem.SetID, slack int) bool {
	demand := make(map[int][]int) // element -> chosen indices demanding it
	for ci, s := range chosen {
		for _, e := range members[s] {
			demand[e] = append(demand[e], ci)
		}
	}
	type overElem struct {
		cis   []int
		extra int
	}
	var overs []overElem
	totalExcess := 0
	for e, cis := range demand {
		if x := len(cis) - inst.Elements[e].Capacity; x > 0 {
			overs = append(overs, overElem{cis: cis, extra: x})
			totalExcess += x
		}
	}
	if totalExcess == 0 {
		return true
	}
	if slack == 0 {
		return false
	}
	// Quick necessary condition before running flow.
	if totalExcess > slack*len(chosen) {
		return false
	}

	// Node layout: 0 = source; 1..E = over-elements; E+1..E+C = chosen
	// sets; E+C+1 = sink.
	e, c := len(overs), len(chosen)
	n := e + c + 2
	src, sink := 0, n-1
	g := newFlowGraph(n)
	for i, o := range overs {
		g.addEdge(src, 1+i, o.extra)
		for _, ci := range o.cis {
			g.addEdge(1+i, 1+e+ci, 1)
		}
	}
	for ci := 0; ci < c; ci++ {
		g.addEdge(1+e+ci, sink, slack)
	}
	return g.maxFlow(src, sink) == totalExcess
}

// flowGraph is a minimal adjacency-list max-flow structure
// (Ford–Fulkerson with BFS augmentation — Edmonds–Karp), sized for the
// tiny feasibility networks above.
type flowGraph struct {
	next [][]int // adjacency: node -> edge indices
	to   []int
	capa []int
}

func newFlowGraph(n int) *flowGraph {
	return &flowGraph{next: make([][]int, n)}
}

func (g *flowGraph) addEdge(u, v, c int) {
	g.next[u] = append(g.next[u], len(g.to))
	g.to = append(g.to, v)
	g.capa = append(g.capa, c)
	g.next[v] = append(g.next[v], len(g.to))
	g.to = append(g.to, u)
	g.capa = append(g.capa, 0)
}

func (g *flowGraph) maxFlow(src, sink int) int {
	total := 0
	n := len(g.next)
	parentEdge := make([]int, n)
	for {
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		parentEdge[src] = -2
		queue := []int{src}
		for len(queue) > 0 && parentEdge[sink] == -1 {
			u := queue[0]
			queue = queue[1:]
			for _, ei := range g.next[u] {
				v := g.to[ei]
				if parentEdge[v] == -1 && g.capa[ei] > 0 {
					parentEdge[v] = ei
					queue = append(queue, v)
				}
			}
		}
		if parentEdge[sink] == -1 {
			return total
		}
		// Find bottleneck along the path.
		bottleneck := int(^uint(0) >> 1)
		for v := sink; v != src; {
			ei := parentEdge[v]
			if g.capa[ei] < bottleneck {
				bottleneck = g.capa[ei]
			}
			v = g.to[ei^1]
		}
		for v := sink; v != src; {
			ei := parentEdge[v]
			g.capa[ei] -= bottleneck
			g.capa[ei^1] += bottleneck
			v = g.to[ei^1]
		}
		total += bottleneck
	}
}
